// Process-isolation matrix (DESIGN.md Sec. 10): the rollout wire codec, the
// fork/poll/kill supervisor against every worker_* fault point (crash, OOM
// kill, result-frame truncation, silent hang), the backoff schedule, and the
// trainer integration — a crash-free isolated run and a transiently-crashing
// isolated run must both be bit-identical to the thread backend, while a
// persistently crashing worker degrades the iteration instead of sinking it.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/telemetry.h"
#include "rl/audit.h"
#include "rl/isolation/supervisor.h"
#include "rl/isolation/wire.h"
#include "rl/trainer.h"

namespace rlccd {
namespace {

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

RolloutWire sample_wire() {
  RolloutWire w;
  w.outcome.summary.wns = -1.5;
  w.outcome.summary.tns = -12.5;
  w.outcome.summary.nve = 9;
  w.outcome.summary.num_endpoints = 120;
  w.outcome.summary.worst_hold_slack = 0.0625;
  w.outcome.reward = 0.625;
  w.outcome.flow_ran = true;
  w.outcome.cancelled = false;
  w.outcome.state_hash = Hash128{0x0123456789abcdefull, 0xfedcba9876543210ull};
  w.outcome.cache_hit = true;
  w.outcome.flow_sec = 0.375;
  w.outcome.sta_pin_updates = 4096;
  w.steps = 3;
  w.poisoned = false;
  w.selection = {PinId(7), PinId(0), PinId(4095)};
  w.grads = {{1.0f, -2.5f}, {}, {0.0f, 3.25f, -0.125f}};
  AuditStep step;
  step.chosen = 11;
  step.slack = -0.375;
  step.log_prob = -1.25;
  step.entropy = 0.5;
  step.top_probs = {{11, 0.75}, {2, 0.125}};
  step.masked = {{9, 0.8125}, {13, 0.4375}};
  w.audit.steps = {step};
  w.audit.poisoned = false;
  w.telemetry.counters = {{"flow.cancelled", 0}, {"sta.full_runs", 4}};
  w.telemetry.gauges = {{"train.cache_resident_bytes", 4096}};
  MetricsHistogram::Snapshot h;
  h.merge_value(0.25, -2);
  h.merge_value(1.5, 1);
  w.telemetry.histograms = {{"flow.seconds", h}};
  w.telemetry.spans.name = "<root>";
  SpanNode& rollout = w.telemetry.spans.child("rollout");
  rollout.count = 1;
  rollout.total_sec = 0.25;
  SpanNode& flow = rollout.child("flow");
  flow.count = 1;
  flow.total_sec = 0.125;
  return w;
}

void expect_wire_equal(const RolloutWire& a, const RolloutWire& b) {
  EXPECT_EQ(a.outcome.summary.wns, b.outcome.summary.wns);
  EXPECT_EQ(a.outcome.summary.tns, b.outcome.summary.tns);
  EXPECT_EQ(a.outcome.summary.nve, b.outcome.summary.nve);
  EXPECT_EQ(a.outcome.summary.num_endpoints, b.outcome.summary.num_endpoints);
  EXPECT_EQ(a.outcome.summary.worst_hold_slack,
            b.outcome.summary.worst_hold_slack);
  EXPECT_EQ(a.outcome.reward, b.outcome.reward);
  EXPECT_EQ(a.outcome.flow_ran, b.outcome.flow_ran);
  EXPECT_EQ(a.outcome.cancelled, b.outcome.cancelled);
  EXPECT_EQ(a.outcome.state_hash, b.outcome.state_hash);
  EXPECT_EQ(a.outcome.cache_hit, b.outcome.cache_hit);
  EXPECT_EQ(a.outcome.flow_sec, b.outcome.flow_sec);
  EXPECT_EQ(a.outcome.sta_pin_updates, b.outcome.sta_pin_updates);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.poisoned, b.poisoned);
  ASSERT_EQ(a.selection.size(), b.selection.size());
  for (std::size_t i = 0; i < a.selection.size(); ++i) {
    EXPECT_EQ(a.selection[i], b.selection[i]);
  }
  EXPECT_EQ(a.grads, b.grads);
  EXPECT_EQ(a.audit.poisoned, b.audit.poisoned);
  ASSERT_EQ(a.audit.steps.size(), b.audit.steps.size());
  for (std::size_t t = 0; t < a.audit.steps.size(); ++t) {
    const AuditStep& sa = a.audit.steps[t];
    const AuditStep& sb = b.audit.steps[t];
    EXPECT_EQ(sa.chosen, sb.chosen);
    EXPECT_EQ(sa.slack, sb.slack);
    EXPECT_EQ(sa.log_prob, sb.log_prob);
    EXPECT_EQ(sa.entropy, sb.entropy);
    EXPECT_EQ(sa.top_probs, sb.top_probs);
    ASSERT_EQ(sa.masked.size(), sb.masked.size());
    for (std::size_t m = 0; m < sa.masked.size(); ++m) {
      EXPECT_EQ(sa.masked[m].endpoint, sb.masked[m].endpoint);
      EXPECT_EQ(sa.masked[m].overlap, sb.masked[m].overlap);
    }
  }
  EXPECT_EQ(a.telemetry.counters, b.telemetry.counters);
  EXPECT_EQ(a.telemetry.gauges, b.telemetry.gauges);
  ASSERT_EQ(a.telemetry.histograms.size(), b.telemetry.histograms.size());
  for (std::size_t i = 0; i < a.telemetry.histograms.size(); ++i) {
    EXPECT_EQ(a.telemetry.histograms[i].first, b.telemetry.histograms[i].first);
    const MetricsHistogram::Snapshot& ha = a.telemetry.histograms[i].second;
    const MetricsHistogram::Snapshot& hb = b.telemetry.histograms[i].second;
    EXPECT_EQ(ha.count, hb.count);
    EXPECT_EQ(ha.sum, hb.sum);
    EXPECT_EQ(ha.min, hb.min);
    EXPECT_EQ(ha.max, hb.max);
    EXPECT_EQ(ha.buckets, hb.buckets);
  }
  // Span tree: compare the one path the sample populates.
  const SpanNode* ra = a.telemetry.spans.find("rollout/flow");
  const SpanNode* rb = b.telemetry.spans.find("rollout/flow");
  ASSERT_NE(ra, nullptr);
  ASSERT_NE(rb, nullptr);
  EXPECT_EQ(ra->count, rb->count);
  EXPECT_EQ(ra->total_sec, rb->total_sec);
}

TEST(RolloutWireCodec, RoundTripsEveryField) {
  RolloutWire in = sample_wire();
  std::string bytes;
  encode_rollout_wire(in, bytes);
  RolloutWire out;
  ASSERT_TRUE(decode_rollout_wire(bytes, out).ok());
  expect_wire_equal(out, in);
}

TEST(RolloutWireCodec, RejectsEveryTruncationPoint) {
  std::string bytes;
  encode_rollout_wire(sample_wire(), bytes);
  // A frame cut anywhere — byte-granular over the whole payload — must be
  // rejected, never mis-decoded or crashed on.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    RolloutWire out;
    Status s = decode_rollout_wire(std::string_view(bytes).substr(0, cut), out);
    ASSERT_FALSE(s.ok()) << "cut at byte " << cut;
    EXPECT_EQ(s.code(), StatusCode::kCorrupt) << "cut at byte " << cut;
  }
}

TEST(RolloutWireCodec, RejectsVersionMismatchAndTrailingBytes) {
  std::string bytes;
  encode_rollout_wire(sample_wire(), bytes);

  std::string wrong_version = bytes;
  wrong_version[0] = static_cast<char>(RolloutWire::kVersion + 1);
  RolloutWire out;
  EXPECT_FALSE(decode_rollout_wire(wrong_version, out).ok());

  std::string overlong = bytes + '\0';
  EXPECT_FALSE(decode_rollout_wire(overlong, out).ok())
      << "trailing bytes mean the stream is not what the encoder produced";
}

// ---------------------------------------------------------------------------
// Supervisor fault matrix
// ---------------------------------------------------------------------------

#ifndef _WIN32

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::global().reset(); }
  void TearDown() override { FaultInjector::global().reset(); }

  static std::uint64_t counter(const char* name) {
    return MetricsRegistry::global().counter(name).value();
  }
};

// Default job: deterministic payload naming the worker.
std::string echo_job(int worker) {
  return "payload-" + std::to_string(worker);
}

TEST_F(SupervisorTest, DeliversPayloadsFromAllWorkers) {
  SupervisorConfig cfg;
  cfg.workers = 3;
  RolloutSupervisor sup(cfg);
  std::vector<WorkerOutcome> outs = sup.run(echo_job);
  ASSERT_EQ(outs.size(), 3u);
  for (int w = 0; w < 3; ++w) {
    const WorkerOutcome& o = outs[static_cast<std::size_t>(w)];
    EXPECT_TRUE(o.completed) << "worker " << w;
    EXPECT_EQ(o.payload, "payload-" + std::to_string(w));
    EXPECT_EQ(o.attempts, 1);
    EXPECT_EQ(o.kills, 0);
    EXPECT_TRUE(o.backoff_sec.empty());
    EXPECT_EQ(o.last_failure, WorkerFailure::kNone);
  }
}

TEST_F(SupervisorTest, TransientCrashRestartsAndRecovers) {
  // First spawn of worker 0 exits with code 3; the retry re-runs the same
  // job and succeeds. Worker 1 is untouched.
  FaultInjector::global().arm({"worker_crash", 1, 1, 0.0});
  const std::uint64_t restarts_before = counter("train.worker_restarts");

  SupervisorConfig cfg;
  cfg.workers = 2;
  cfg.backoff_base_sec = 0.005;
  RolloutSupervisor sup(cfg);
  std::vector<WorkerOutcome> outs = sup.run(echo_job);

  ASSERT_EQ(outs.size(), 2u);
  EXPECT_TRUE(outs[0].completed);
  EXPECT_EQ(outs[0].payload, "payload-0");
  EXPECT_EQ(outs[0].attempts, 2);
  EXPECT_EQ(outs[0].last_failure, WorkerFailure::kExit);
  EXPECT_EQ(outs[0].exit_code, 3);
  ASSERT_EQ(outs[0].backoff_sec.size(), 1u);
  EXPECT_TRUE(outs[1].completed);
  EXPECT_EQ(outs[1].attempts, 1);
  EXPECT_EQ(counter("train.worker_restarts"), restarts_before + 1);
}

TEST_F(SupervisorTest, BackoffScheduleGrowsExponentiallyAndIsDeterministic) {
  SupervisorConfig cfg;
  cfg.workers = 1;
  cfg.max_restarts = 3;
  cfg.backoff_base_sec = 0.01;
  cfg.backoff_max_sec = 2.0;
  cfg.backoff_seed = 42;

  auto run_once = [&]() {
    FaultInjector::global().reset();
    FaultInjector::global().arm({"worker_crash", 1, 3, 0.0});
    return RolloutSupervisor(cfg).run(echo_job);
  };

  std::vector<WorkerOutcome> outs = run_once();
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_TRUE(outs[0].completed) << "4th attempt is past the fault window";
  EXPECT_EQ(outs[0].attempts, 4);
  ASSERT_EQ(outs[0].backoff_sec.size(), 3u);
  // Restart r waits min(base * 2^r, max) * (1 + u/2), u in [0, 1):
  // disjoint, strictly growing windows for base 0.01.
  const double lo[] = {0.01, 0.02, 0.04};
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_GE(outs[0].backoff_sec[r], lo[r]) << "restart " << r;
    EXPECT_LT(outs[0].backoff_sec[r], lo[r] * 1.5) << "restart " << r;
  }
  EXPECT_LT(outs[0].backoff_sec[0], outs[0].backoff_sec[1]);
  EXPECT_LT(outs[0].backoff_sec[1], outs[0].backoff_sec[2]);

  // Same seed, same worker: the jittered schedule replays exactly.
  std::vector<WorkerOutcome> again = run_once();
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].backoff_sec, outs[0].backoff_sec);
}

TEST_F(SupervisorTest, PersistentCrashExhaustsRestarts) {
  FaultInjector::global().arm({"worker_crash", 1, 1 << 20, 0.0});
  SupervisorConfig cfg;
  cfg.workers = 1;
  cfg.max_restarts = 2;
  cfg.backoff_base_sec = 0.005;
  std::vector<WorkerOutcome> outs = RolloutSupervisor(cfg).run(echo_job);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_FALSE(outs[0].completed);
  EXPECT_EQ(outs[0].attempts, 3) << "max_restarts + 1 attempts, no more";
  EXPECT_EQ(outs[0].last_failure, WorkerFailure::kExit);
  EXPECT_EQ(outs[0].exit_code, 3);
  EXPECT_EQ(outs[0].backoff_sec.size(), 2u);
}

TEST_F(SupervisorTest, OomKillClassifiedAsDeathBySignal) {
  FaultInjector::global().arm({"worker_oom", 1, 1, 0.0});
  SupervisorConfig cfg;
  cfg.workers = 1;
  cfg.backoff_base_sec = 0.005;
  std::vector<WorkerOutcome> outs = RolloutSupervisor(cfg).run(echo_job);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_TRUE(outs[0].completed);
  EXPECT_EQ(outs[0].attempts, 2);
  EXPECT_EQ(outs[0].last_failure, WorkerFailure::kSignal);
  EXPECT_EQ(outs[0].term_signal, SIGKILL);
  EXPECT_EQ(outs[0].kills, 0) << "the kernel killed it, not the supervisor";
}

TEST_F(SupervisorTest, TruncatedResultFrameClassifiedAsProtocolError) {
  FaultInjector::global().arm({"pipe_truncate", 1, 1, 0.0});
  SupervisorConfig cfg;
  cfg.workers = 1;
  cfg.backoff_base_sec = 0.005;
  std::vector<WorkerOutcome> outs = RolloutSupervisor(cfg).run(echo_job);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_TRUE(outs[0].completed);
  EXPECT_EQ(outs[0].payload, "payload-0");
  EXPECT_EQ(outs[0].attempts, 2);
  EXPECT_EQ(outs[0].last_failure, WorkerFailure::kProtocol);
}

TEST_F(SupervisorTest, ThrowingJobClassifiedAsProtocolError) {
  SupervisorConfig cfg;
  cfg.workers = 1;
  cfg.max_restarts = 0;
  std::vector<WorkerOutcome> outs = RolloutSupervisor(cfg).run(
      [](int) -> std::string { throw std::runtime_error("rollout blew up"); });
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_FALSE(outs[0].completed);
  EXPECT_EQ(outs[0].attempts, 1);
  EXPECT_EQ(outs[0].last_failure, WorkerFailure::kProtocol)
      << "the child reported the exception in an error frame";
}

TEST_F(SupervisorTest, HungChildIsKilledOnHeartbeatSilence) {
  // The hang fault wedges the child for 30 s WITHOUT heartbeating; the
  // supervisor must SIGKILL it after heartbeat_timeout, not wait it out.
  FaultInjector::global().arm({"worker_hang", 1, 1, 30.0});
  const std::uint64_t kills_before = counter("train.worker_kills");

  SupervisorConfig cfg;
  cfg.workers = 1;
  cfg.heartbeat_interval_sec = 0.02;
  cfg.heartbeat_timeout_sec = 0.15;
  cfg.max_restarts = 1;
  cfg.backoff_base_sec = 0.005;
  RolloutSupervisor sup(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<WorkerOutcome> outs = sup.run(echo_job);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ASSERT_EQ(outs.size(), 1u);
  EXPECT_TRUE(outs[0].completed) << "the retry is past the fault window";
  EXPECT_EQ(outs[0].attempts, 2);
  EXPECT_GE(outs[0].kills, 1);
  EXPECT_EQ(outs[0].last_failure, WorkerFailure::kTimeout);
  EXPECT_EQ(outs[0].term_signal, SIGKILL);
  EXPECT_LT(elapsed, 10.0) << "must not have waited out the 30 s hang";
  EXPECT_GE(counter("train.worker_kills"), kills_before + 1);
}

TEST_F(SupervisorTest, DeadlineKillsRunawayAttemptEvenWhileHeartbeating) {
  // The job sleeps far past the deadline but its heartbeat thread keeps
  // beating — only the hard per-attempt deadline can reap it.
  SupervisorConfig cfg;
  cfg.workers = 1;
  cfg.deadline_sec = 0.2;
  cfg.heartbeat_interval_sec = 0.02;
  cfg.heartbeat_timeout_sec = 5.0;
  cfg.max_restarts = 0;
  RolloutSupervisor sup(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<WorkerOutcome> outs = sup.run([](int) -> std::string {
    std::this_thread::sleep_for(std::chrono::seconds(30));
    return "too late";
  });
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ASSERT_EQ(outs.size(), 1u);
  EXPECT_FALSE(outs[0].completed);
  EXPECT_EQ(outs[0].attempts, 1);
  EXPECT_EQ(outs[0].kills, 1);
  EXPECT_EQ(outs[0].last_failure, WorkerFailure::kTimeout);
  EXPECT_LT(elapsed, 10.0);
}

// ---------------------------------------------------------------------------
// Trainer integration
// ---------------------------------------------------------------------------

Design small_design(std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.target_cells = 400;
  cfg.seed = seed;
  cfg.clock_tightness = 0.72;
  return generate_design(cfg);
}

struct TrainRun {
  TrainStats stats;
  std::vector<std::vector<float>> params;
  std::string audit_jsonl;
};

TrainRun run_training(const Design& d, bool isolate, const std::string& tag,
                      int max_worker_restarts = 2) {
  const std::string path =
      std::string(::testing::TempDir()) + "/isolation_eq_" + tag + ".jsonl";
  std::unique_ptr<JsonlAuditWriter> writer;
  EXPECT_TRUE(JsonlAuditWriter::open(path, writer).ok());

  Policy policy(PolicyConfig{}, 4);
  TrainConfig cfg;
  cfg.workers = 2;
  cfg.max_iterations = 2;
  cfg.min_iterations = 1;
  cfg.patience = 3;
  cfg.flow = default_flow_config(d.netlist->num_real_cells(), d.clock_period);
  cfg.audit = writer.get();
  cfg.isolate_workers = isolate;
  cfg.max_worker_restarts = max_worker_restarts;
  cfg.worker_backoff_sec = 0.005;  // keep injected-crash retries fast
  ReinforceTrainer trainer(&d, &policy, cfg);

  TrainRun run;
  run.stats = trainer.train();
  EXPECT_TRUE(writer->close().ok());
  for (const Tensor& p : policy.parameters()) {
    run.params.emplace_back(p.data(), p.data() + p.size());
  }
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  run.audit_jsonl = buf.str();
  std::remove(path.c_str());
  return run;
}

void expect_bit_identical(const TrainRun& a, const TrainRun& b) {
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  EXPECT_EQ(a.stats.flow_runs, b.stats.flow_runs);
  EXPECT_EQ(a.stats.default_tns, b.stats.default_tns);
  EXPECT_EQ(a.stats.best_tns, b.stats.best_tns);
  EXPECT_EQ(a.stats.best_selection, b.stats.best_selection);
  ASSERT_EQ(a.stats.history.size(), b.stats.history.size());
  for (std::size_t i = 0; i < a.stats.history.size(); ++i) {
    const IterationStats& x = a.stats.history[i];
    const IterationStats& y = b.stats.history[i];
    EXPECT_EQ(x.mean_reward, y.mean_reward) << "iter " << i;
    EXPECT_EQ(x.mean_tns, y.mean_tns) << "iter " << i;
    EXPECT_EQ(x.iter_best_tns, y.iter_best_tns) << "iter " << i;
    EXPECT_EQ(x.best_tns, y.best_tns) << "iter " << i;
    EXPECT_EQ(x.mean_steps, y.mean_steps) << "iter " << i;
    EXPECT_EQ(x.mean_entropy, y.mean_entropy) << "iter " << i;
    EXPECT_EQ(x.grad_norm, y.grad_norm) << "iter " << i;
    EXPECT_EQ(x.baseline, y.baseline) << "iter " << i;
  }
  ASSERT_EQ(a.params.size(), b.params.size());
  for (std::size_t p = 0; p < a.params.size(); ++p) {
    ASSERT_EQ(a.params[p].size(), b.params[p].size());
    for (std::size_t i = 0; i < a.params[p].size(); ++i) {
      ASSERT_EQ(a.params[p][i], b.params[p][i])
          << "param " << p << " element " << i;
    }
  }
  EXPECT_FALSE(a.audit_jsonl.empty());
  EXPECT_EQ(a.audit_jsonl, b.audit_jsonl);
}

class TrainerIsolation : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!RolloutSupervisor::supported()) {
      GTEST_SKIP() << "no fork() on this platform";
    }
    FaultInjector::global().reset();
  }
  void TearDown() override { FaultInjector::global().reset(); }

  static std::uint64_t counter(const char* name) {
    return MetricsRegistry::global().counter(name).value();
  }
};

TEST_F(TrainerIsolation, CrashFreeRunBitIdenticalToThreadBackend) {
  Design d = small_design(97);
  TrainRun threads = run_training(d, /*isolate=*/false, "threads");
  TrainRun isolated = run_training(d, /*isolate=*/true, "isolated");
  expect_bit_identical(isolated, threads);
}

TEST_F(TrainerIsolation, TransientCrashIsInvisibleInResults) {
  Design d = small_design(98);
  TrainRun threads = run_training(d, /*isolate=*/false, "crash_ref");

  // Worker 0's first spawn of the run dies with exit code 3; the restart
  // re-runs the identical RNG stream, so every downstream byte matches.
  FaultInjector::global().arm({"worker_crash", 1, 1, 0.0});
  const std::uint64_t restarts_before = counter("train.worker_restarts");
  TrainRun isolated = run_training(d, /*isolate=*/true, "crash_iso");
  EXPECT_GE(counter("train.worker_restarts"), restarts_before + 1);
  expect_bit_identical(isolated, threads);
}

TEST_F(TrainerIsolation, TransientOomKillIsInvisibleInResults) {
  Design d = small_design(99);
  TrainRun threads = run_training(d, /*isolate=*/false, "oom_ref");

  FaultInjector::global().arm({"worker_oom", 1, 1, 0.0});
  const std::uint64_t restarts_before = counter("train.worker_restarts");
  TrainRun isolated = run_training(d, /*isolate=*/true, "oom_iso");
  EXPECT_GE(counter("train.worker_restarts"), restarts_before + 1);
  expect_bit_identical(isolated, threads);
}

TEST_F(TrainerIsolation, TruncatedResultFrameIsRetriedTransparently) {
  Design d = small_design(100);
  TrainRun threads = run_training(d, /*isolate=*/false, "trunc_ref");

  FaultInjector::global().arm({"pipe_truncate", 1, 1, 0.0});
  const std::uint64_t restarts_before = counter("train.worker_restarts");
  TrainRun isolated = run_training(d, /*isolate=*/true, "trunc_iso");
  EXPECT_GE(counter("train.worker_restarts"), restarts_before + 1);
  expect_bit_identical(isolated, threads);
}

TEST_F(TrainerIsolation, PersistentCrashDegradesIterationWithSurvivors) {
  Design d = small_design(101);
  // Every spawn of worker 0 crashes; worker 1 keeps delivering. Training
  // must finish on the survivor instead of aborting, and the loss must be
  // visible in the counters and the audit stream.
  FaultInjector::global().arm({"worker_crash", 1, 1 << 20, 0.0});
  const std::uint64_t lost_before = counter("train.workers_lost");
  const std::uint64_t degraded_before = counter("train.iterations_degraded");

  TrainRun isolated = run_training(d, /*isolate=*/true, "degraded",
                                   /*max_worker_restarts=*/1);

  EXPECT_GE(isolated.stats.history.size(), 1u)
      << "iterations proceed on the surviving worker";
  EXPECT_GE(counter("train.workers_lost"), lost_before + 1);
  EXPECT_GE(counter("train.iterations_degraded"), degraded_before + 1);
  EXPECT_NE(isolated.audit_jsonl.find("\"crashed\":true"), std::string::npos)
      << "the lost rollout is recorded in decision provenance";
  EXPECT_NE(isolated.audit_jsonl.find("\"type\":\"iteration\""),
            std::string::npos);
}

#endif  // !_WIN32

}  // namespace
}  // namespace rlccd
