#include "sta/cone.h"

#include <gtest/gtest.h>

#include "sta/sta.h"

#include "helpers/test_circuits.h"

namespace rlccd {
namespace {

using testing::Pipeline;
using testing::TestCircuit;

TEST(Cone, TracesCombinationalCellsOnly) {
  Pipeline p(/*n_front=*/2, /*n_mid=*/3, /*n_back=*/1);
  const Netlist& nl = *p.c.nl;
  PinId d2 = nl.cell(p.ff2).inputs[0];
  FanInCone cone = trace_fanin_cone(nl, d2);
  // The mid chain has 3 buffers; tracing stops at FF1 (startpoint).
  EXPECT_EQ(cone.size(), 3u);
  for (CellId cell : cone) {
    EXPECT_FALSE(nl.is_sequential(cell));
    EXPECT_FALSE(nl.is_port(cell));
  }
}

TEST(Cone, StopsAtStartpoints) {
  Pipeline p(/*n_front=*/4, /*n_mid=*/2, /*n_back=*/0);
  const Netlist& nl = *p.c.nl;
  // FF2's cone must not leak past FF1 into the front chain.
  FanInCone cone = trace_fanin_cone(nl, nl.cell(p.ff2).inputs[0]);
  EXPECT_EQ(cone.size(), 2u);
  // FF1's cone is the front chain.
  FanInCone front = trace_fanin_cone(nl, nl.cell(p.ff1).inputs[0]);
  EXPECT_EQ(front.size(), 4u);
  // The two cones are disjoint.
  EXPECT_DOUBLE_EQ(cone_overlap_ratio(cone, front), 0.0);
}

TEST(Cone, OverlapRatioMatchesFigureThreeDefinition) {
  // Build two endpoints with a shared sub-cone:
  //   shared chain S (2 cells) feeds both AND gates a and b.
  TestCircuit c;
  CellId ff_src = c.add(CellKind::Dff);
  CellId s1 = c.add(CellKind::Buf);
  CellId s2 = c.add(CellKind::Buf);
  CellId a = c.add(CellKind::And2);
  CellId b = c.add(CellKind::And2);
  CellId ff_a = c.add(CellKind::Dff);
  CellId ff_b = c.add(CellKind::Dff);
  CellId pi = c.add(CellKind::Input);

  c.link(ff_src, {{s1, 0}});
  c.link(s1, {{s2, 0}});
  c.link(s2, {{a, 0}, {b, 0}});
  c.link(pi, {{a, 1}, {b, 1}});
  c.link(a, {{ff_a, 0}});
  c.link(b, {{ff_b, 0}});
  c.nl->validate();

  FanInCone cone_a = trace_fanin_cone(*c.nl, c.nl->cell(ff_a).inputs[0]);
  FanInCone cone_b = trace_fanin_cone(*c.nl, c.nl->cell(ff_b).inputs[0]);
  ASSERT_EQ(cone_a.size(), 3u);  // s1, s2, a
  ASSERT_EQ(cone_b.size(), 3u);  // s1, s2, b
  // overlap = |{s1,s2}| / |{s1,s2,a,b}| = 2/4.
  EXPECT_DOUBLE_EQ(cone_overlap_ratio(cone_a, cone_b), 0.5);
}

TEST(Cone, OverlapIsSymmetricAndBounded) {
  Pipeline p;
  const Netlist& nl = *p.c.nl;
  FanInCone a = trace_fanin_cone(nl, nl.cell(p.ff1).inputs[0]);
  FanInCone b = trace_fanin_cone(nl, nl.cell(p.ff2).inputs[0]);
  EXPECT_DOUBLE_EQ(cone_overlap_ratio(a, b), cone_overlap_ratio(b, a));
  EXPECT_DOUBLE_EQ(cone_overlap_ratio(a, a), 1.0);
  EXPECT_GE(cone_overlap_ratio(a, b), 0.0);
  EXPECT_LE(cone_overlap_ratio(a, b), 1.0);
}

TEST(Cone, EmptyConesOverlapZero) {
  TestCircuit c;
  CellId ff1 = c.add(CellKind::Dff);
  CellId ff2 = c.add(CellKind::Dff);
  c.link(ff1, {{ff2, 0}});  // direct flop-to-flop: empty cone
  FanInCone cone = trace_fanin_cone(*c.nl, c.nl->cell(ff2).inputs[0]);
  EXPECT_TRUE(cone.empty());
  EXPECT_DOUBLE_EQ(cone_overlap_ratio(cone, cone), 0.0);
}

TEST(ConeIndex, PrecomputesAllEndpointCones) {
  Pipeline p;
  const Netlist& nl = *p.c.nl;
  Sta sta(p.c.nl.get(), StaConfig{}, 1.0);
  sta.run();
  std::vector<PinId> eps(sta.endpoints().begin(), sta.endpoints().end());
  ConeIndex index(nl, eps);
  EXPECT_EQ(index.size(), 3u);
  for (std::size_t i = 0; i < index.size(); ++i) {
    EXPECT_EQ(index.cone(i), trace_fanin_cone(nl, eps[i]));
  }
}

}  // namespace
}  // namespace rlccd
