file(REMOVE_RECURSE
  "CMakeFiles/rlccd_gnn.dir/ep_gnn.cpp.o"
  "CMakeFiles/rlccd_gnn.dir/ep_gnn.cpp.o.d"
  "CMakeFiles/rlccd_gnn.dir/features.cpp.o"
  "CMakeFiles/rlccd_gnn.dir/features.cpp.o.d"
  "CMakeFiles/rlccd_gnn.dir/graph.cpp.o"
  "CMakeFiles/rlccd_gnn.dir/graph.cpp.o.d"
  "librlccd_gnn.a"
  "librlccd_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlccd_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
