// Mutation journal: the netlist's record of what changed since any observer
// last looked.
//
// Every Netlist mutator appends entries describing the cells whose timing
// could be affected by the edit, instead of silently invalidating the whole
// design. Consumers (the incremental STA) keep a cursor — the sequence
// number up to which they have already reacted — and ask for `since(cursor)`
// to obtain exactly the pending mutations. Multiple independent consumers
// are supported; each owns its own cursor.
//
// Entries are tiny (kind + cell id) and the journal only ever grows within
// one optimization session, so recording is a single push_back on the hot
// mutation path. `collapse()` discards the backlog while keeping sequence
// numbers monotone; a consumer whose cursor predates the collapse point is
// told so (`Underflow`) and must fall back to a full recompute.
//
// The journal also maintains a Zobrist-style 128-bit state hash: every
// record() XORs in a seeded per-(sequence, kind, cell) key, so the hash is
// an O(1)-incremental fingerprint of the netlist's entire mutation history.
// Folding the sequence number into each key makes the hash order-sensitive
// and repeat-safe (two resizes of the same cell do not cancel, unlike a
// plain occupancy Zobrist), which is what a history fingerprint needs.
// Copying a netlist copies the hash; collapse() leaves it untouched (it
// discards bookkeeping, not state). Replaying the same mutation sequence
// from the same start therefore reproduces the same hash bit for bit —
// this keys the rollout flow-outcome cache (rl/flow_cache.h).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.h"
#include "common/ids.h"

namespace rlccd {

enum class MutationKind : std::uint8_t {
  // The cell's own arcs or the loads of its connected nets changed
  // (resize, sink-capacitance change, wire-parasitic refresh).
  Electrical,
  // The cell moved: wire delays of every net it touches changed.
  Moved,
  // Connectivity around the cell changed (new cell, sink re-targeted,
  // input nets swapped) — the timing-graph topology must be patched.
  Structural,
};

struct Mutation {
  MutationKind kind;
  CellId cell;
};

class MutationJournal {
 public:
  // Sequence number one past the newest entry; strictly monotone across
  // record() and collapse().
  [[nodiscard]] std::uint64_t seq() const { return base_ + entries_.size(); }

  void record(MutationKind kind, CellId cell) {
    state_hash_ ^= hash128(
        seq(), (static_cast<std::uint64_t>(kind) << 32) | cell.value);
    entries_.push_back(Mutation{kind, cell});
  }

  // Incremental fingerprint of the full mutation history (see file header).
  [[nodiscard]] const Hash128& state_hash() const { return state_hash_; }

  // Entries in [from, seq()). `underflow` (when non-null) is set when `from`
  // predates the retained window, in which case the full backlog is returned
  // and the caller must treat everything as dirty.
  [[nodiscard]] std::span<const Mutation> since(std::uint64_t from,
                                                bool* underflow = nullptr) const {
    if (from < base_) {
      if (underflow != nullptr) *underflow = true;
      return entries_;
    }
    if (underflow != nullptr) *underflow = false;
    std::uint64_t offset = from - base_;
    if (offset >= entries_.size()) return {};
    return std::span<const Mutation>(entries_).subspan(
        static_cast<std::size_t>(offset));
  }

  // Drops the backlog (e.g. after design construction) without disturbing
  // sequence numbering.
  void collapse() {
    base_ += entries_.size();
    entries_.clear();
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::vector<Mutation> entries_;
  std::uint64_t base_ = 0;
  Hash128 state_hash_;
};

}  // namespace rlccd
