#include "core/rlccd.h"

#include <algorithm>

#include "common/log.h"

namespace rlccd {

RlCcdConfig RlCcdConfig::for_design(const Design& design) {
  RlCcdConfig cfg;
  cfg.train.flow = default_flow_config(design.netlist->num_real_cells(),
                                       design.clock_period);
  return cfg;
}

RlCcd::RlCcd(const Design* design, RlCcdConfig config)
    : design_(design),
      config_(std::move(config)),
      policy_(config_.policy, config_.policy_seed) {
  RLCCD_EXPECTS(design != nullptr);
  if (!config_.pretrained_gnn.empty()) {
    Status s = policy_.load_gnn(config_.pretrained_gnn);
    if (!s.ok()) {
      RLCCD_LOG_ERROR("cannot load pre-trained EP-GNN: %s",
                      s.to_string().c_str());
    }
    RLCCD_EXPECTS(s.ok());
    RLCCD_LOG_INFO("loaded pre-trained EP-GNN from %s",
                   config_.pretrained_gnn.c_str());
  }
}

namespace {

FlowAuditRecord to_flow_record(const char* label, const FlowResult& flow) {
  FlowAuditRecord rec;
  rec.label = label;
  rec.wns = flow.final_summary.wns;
  rec.tns = flow.final_summary.tns;
  rec.nve = flow.final_summary.nve;
  rec.outcomes.reserve(flow.prioritized_outcomes.size());
  for (const EndpointOutcome& o : flow.prioritized_outcomes) {
    rec.outcomes.push_back({o.pin.value, o.begin_slack, o.final_slack});
  }
  return rec;
}

}  // namespace

RlCcdResult RlCcd::run() {
  RLCCD_SPAN("rlccd");
  RlCcdResult result;
  TrainConfig train_config = config_.train;
  if (train_config.observer == nullptr) {
    train_config.observer = config_.observer;
  }
  if (train_config.audit == nullptr) {
    train_config.audit = config_.audit;
  }
  ReinforceTrainer trainer(design_, &policy_, train_config);
  result.train = trainer.train();
  result.selection = result.train.best_selection;
  {
    RLCCD_SPAN("final_flows");
    result.default_flow = trainer.evaluate_selection({});
    result.rl_flow = trainer.evaluate_selection(result.selection);
  }
  if (train_config.audit != nullptr) {
    train_config.audit->on_flow(to_flow_record("default", result.default_flow));
    train_config.audit->on_flow(to_flow_record("rl", result.rl_flow));
  }
  double default_cost = std::max(1e-9, result.default_flow.runtime_sec());
  result.runtime_factor =
      (result.train.train_seconds + result.rl_flow.runtime_sec()) /
      default_cost;
  return result;
}

}  // namespace rlccd
