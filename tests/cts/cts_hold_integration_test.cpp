// Cross-module integration: useful skew -> CTS realization -> hold cleanup.
// Realizing an aggressive skew schedule through a quantized clock tree can
// create hold violations the ideal schedule did not have; run_hold_fix must
// clean them without destroying the setup picture.
#include <gtest/gtest.h>

#include "cts/clock_tree.h"
#include "designgen/generator.h"
#include "opt/hold_fix.h"
#include "opt/useful_skew.h"

namespace rlccd {
namespace {

TEST(CtsHoldIntegration, RealizedScheduleIsHoldCleanAfterFixing) {
  GeneratorConfig cfg;
  cfg.target_cells = 900;
  cfg.seed = 161;
  cfg.clock_tightness = 0.78;
  Design d = generate_design(cfg);

  // Aggressive skew with zero hold guard: lives dangerously on purpose.
  Sta sta = d.make_sta();
  UsefulSkewConfig skew_cfg;
  skew_cfg.max_abs_skew = 0.12 * d.clock_period;
  skew_cfg.hold_guard = 0.0;
  run_useful_skew(sta, skew_cfg);
  double ideal_tns = sta.summary().tns;

  // Realize through CTS (coarse pads to provoke quantization error).
  CtsConfig cts_cfg;
  cts_cfg.pad_quantum = 0.02;
  ClockTree tree = ClockTree::build(*d.netlist, sta.clock(), cts_cfg);
  Sta post(d.netlist.get(), d.sta_config, d.clock_period);
  tree.apply_to(post.clock());
  post.run();

  // Clean any hold debt the realization introduced. Hold violations are
  // fatal in silicon, so allow the pass to trade setup slack for them
  // (setup_guard below any realistic slack).
  HoldFixConfig hold_cfg;
  hold_cfg.max_buffers = 500;
  hold_cfg.setup_guard = -10.0;
  HoldFixResult hr = run_hold_fix(post, *d.netlist, hold_cfg);

  TimingSummary final_summary = post.summary();
  EXPECT_GE(final_summary.worst_hold_slack, -1e-9)
      << "hold must be clean after fixing (" << hr.buffers_inserted
      << " pads)";
  // Setup cannot have collapsed: stay within a band of the ideal schedule.
  EXPECT_GT(final_summary.tns, ideal_tns - 0.5 * std::abs(ideal_tns) - 0.1);
  d.netlist->validate();
}

}  // namespace
}  // namespace rlccd
