// The Zobrist state hash (journal.h) keys the rollout flow-outcome cache,
// so these tests pin its contract: incremental maintenance matches a
// from-scratch replay bit for bit, the hash is order-sensitive and
// repeat-safe, collapse() and copying leave it untouched, and identical
// mutation sequences on identical netlists converge to identical hashes.
#include <gtest/gtest.h>

#include "helpers/test_circuits.h"
#include "netlist/journal.h"
#include "netlist/netlist.h"

namespace rlccd {
namespace {

using testing::Pipeline;
using testing::TestCircuit;

TEST(JournalHashTest, StartsAtZeroAndChangesOnRecord) {
  MutationJournal j;
  EXPECT_EQ(j.state_hash(), Hash128{});
  j.record(MutationKind::Electrical, CellId{3});
  EXPECT_NE(j.state_hash(), Hash128{});
}

TEST(JournalHashTest, ReplayFromScratchReproducesHash) {
  // The incremental hash is a pure function of the record() sequence:
  // feeding the same (kind, cell) stream to a fresh journal lands on the
  // same 128 bits, even when the original interleaved collapse() calls
  // (collapse discards bookkeeping, not history — sequence numbers stay
  // monotone, so the per-event keys line up).
  MutationJournal incremental;
  incremental.record(MutationKind::Electrical, CellId{1});
  incremental.record(MutationKind::Moved, CellId{2});
  incremental.collapse();
  incremental.record(MutationKind::Structural, CellId{3});
  incremental.collapse();
  incremental.record(MutationKind::Electrical, CellId{1});

  MutationJournal replay;
  replay.record(MutationKind::Electrical, CellId{1});
  replay.record(MutationKind::Moved, CellId{2});
  replay.record(MutationKind::Structural, CellId{3});
  replay.record(MutationKind::Electrical, CellId{1});

  EXPECT_EQ(incremental.state_hash(), replay.state_hash());
  EXPECT_EQ(incremental.seq(), replay.seq());
}

TEST(JournalHashTest, OrderSensitive) {
  // A plain occupancy Zobrist would make A-then-B equal B-then-A; folding
  // the sequence number into each key must not.
  MutationJournal ab;
  ab.record(MutationKind::Moved, CellId{1});
  ab.record(MutationKind::Moved, CellId{2});
  MutationJournal ba;
  ba.record(MutationKind::Moved, CellId{2});
  ba.record(MutationKind::Moved, CellId{1});
  EXPECT_NE(ab.state_hash(), ba.state_hash());
}

TEST(JournalHashTest, RepeatSafe) {
  // Recording the same mutation twice must not XOR-cancel back to the
  // once-recorded (or empty) hash — two resizes of a cell are a different
  // history than one.
  MutationJournal once;
  once.record(MutationKind::Electrical, CellId{7});
  MutationJournal twice;
  twice.record(MutationKind::Electrical, CellId{7});
  twice.record(MutationKind::Electrical, CellId{7});
  EXPECT_NE(twice.state_hash(), once.state_hash());
  EXPECT_NE(twice.state_hash(), Hash128{});
}

TEST(JournalHashTest, KindAndCellBothMatter) {
  MutationJournal a;
  a.record(MutationKind::Electrical, CellId{5});
  MutationJournal b;
  b.record(MutationKind::Moved, CellId{5});
  MutationJournal c;
  c.record(MutationKind::Electrical, CellId{6});
  EXPECT_NE(a.state_hash(), b.state_hash());
  EXPECT_NE(a.state_hash(), c.state_hash());
  EXPECT_NE(b.state_hash(), c.state_hash());
}

TEST(JournalHashTest, CollapseLeavesHashUntouched) {
  MutationJournal j;
  j.record(MutationKind::Structural, CellId{9});
  j.record(MutationKind::Moved, CellId{10});
  const Hash128 before = j.state_hash();
  j.collapse();
  EXPECT_EQ(j.state_hash(), before);
  EXPECT_EQ(j.size(), 0u);
}

TEST(JournalHashTest, NetlistCopyPreservesHashAndDivergesOnEdit) {
  // The rollout evaluator copy-assigns every scratch netlist from the
  // pristine design and assumes the copy starts at exactly the pristine
  // hash; a later edit must move the copy's hash without touching the
  // original's.
  Pipeline p;
  const Hash128 pristine = p.c.nl->state_hash();
  EXPECT_NE(pristine, Hash128{});  // construction itself was journaled

  Netlist copy = *p.c.nl;
  EXPECT_EQ(copy.state_hash(), pristine);

  copy.set_position(p.ff1, 5.0, 5.0);
  EXPECT_NE(copy.state_hash(), pristine);
  EXPECT_EQ(p.c.nl->state_hash(), pristine);
}

TEST(JournalHashTest, IdenticalEditSequencesConverge) {
  // Two copies of the same pristine netlist, same mutator calls in the
  // same order => same hash; different order => different hash. This is
  // the end-to-end property the flow-outcome cache keys on.
  Pipeline p;
  Netlist a = *p.c.nl;
  Netlist b = *p.c.nl;

  a.set_position(p.ff1, 3.0, 4.0);
  a.resize_cell(p.ff2, a.cell(p.ff2).lib);  // self-resize still journals
  a.set_position(p.ff2, 1.0, 2.0);

  b.set_position(p.ff1, 3.0, 4.0);
  b.resize_cell(p.ff2, b.cell(p.ff2).lib);
  b.set_position(p.ff2, 1.0, 2.0);

  EXPECT_EQ(a.state_hash(), b.state_hash());

  Netlist c = *p.c.nl;
  c.set_position(p.ff2, 1.0, 2.0);
  c.resize_cell(p.ff2, c.cell(p.ff2).lib);
  c.set_position(p.ff1, 3.0, 4.0);
  EXPECT_NE(c.state_hash(), a.state_hash());
}

}  // namespace
}  // namespace rlccd
