#include "nn/optim.h"

#include <cmath>

namespace rlccd {

Sgd::Sgd(std::vector<Tensor> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(params_[i].size(), 0.0f);
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    const std::vector<float>& g = p.grad();
    float* value = p.data();
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (momentum_ > 0.0) {
        velocity_[i][j] = static_cast<float>(momentum_ * velocity_[i][j] -
                                             lr_ * g[j]);
        value[j] += velocity_[i][j];
      } else {
        value[j] -= static_cast<float>(lr_ * g[j]);
      }
    }
  }
}

Adam::Adam(std::vector<Tensor> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].size(), 0.0f);
    v_[i].assign(params_[i].size(), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, t_);
  const double bc2 = 1.0 - std::pow(beta2_, t_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    const std::vector<float>& g = p.grad();
    float* value = p.data();
    for (std::size_t j = 0; j < p.size(); ++j) {
      m_[i][j] = static_cast<float>(beta1_ * m_[i][j] + (1.0 - beta1_) * g[j]);
      v_[i][j] = static_cast<float>(beta2_ * v_[i][j] +
                                    (1.0 - beta2_) * g[j] * g[j]);
      const double m_hat = m_[i][j] / bc1;
      const double v_hat = v_[i][j] / bc2;
      value[j] -= static_cast<float>(lr_ * m_hat / (std::sqrt(v_hat) + eps_));
    }
  }
}

Status Adam::import_state(const State& state) {
  if (state.m.size() != params_.size() || state.v.size() != params_.size()) {
    return Status::invalid_argument(
        "optimizer state covers %zu parameters, expected %zu", state.m.size(),
        params_.size());
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (state.m[i].size() != params_[i].size() ||
        state.v[i].size() != params_[i].size()) {
      return Status::invalid_argument(
          "optimizer state parameter %zu has %zu elements, expected %zu", i,
          state.m[i].size(), params_[i].size());
    }
  }
  t_ = state.t;
  m_ = state.m;
  v_ = state.v;
  return Status();
}

double clip_grad_norm(std::vector<Tensor>& params, double max_norm) {
  double sq = 0.0;
  for (Tensor& p : params) {
    for (float g : p.grad()) sq += static_cast<double>(g) * g;
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Tensor& p : params) {
      for (float& g : p.grad_mut()) g *= scale;
    }
  }
  return norm;
}

}  // namespace rlccd
