# Empty dependencies file for rlccd_nn.
# This may be replaced when dependencies are built.
