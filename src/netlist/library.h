// Generic standard-cell library with an NLDM-flavoured linear timing model.
//
// Each logical cell kind (INV, NAND2, DFF, ...) is offered in several drive
// strengths. Delay through a cell arc is modeled as
//     delay = delay_scale * (intrinsic + pin_delta[pin] + drive_res * C_load
//                            + slew_sens * slew_in)
// and output transition as
//     slew  = slew_intrinsic + slew_res * C_load.
// Upsizing a cell lowers drive_res (faster under load) at the cost of larger
// input capacitance and leakage — exactly the trade-off the data-path
// optimizer (src/opt) exploits and the RL agent's Table-I features observe.
#pragma once

#include <string>
#include <vector>

#include "common/contracts.h"
#include "common/ids.h"
#include "netlist/tech.h"

namespace rlccd {

enum class CellKind {
  Input,   // primary input port (virtual driver)
  Output,  // primary output port (virtual load)
  Buf,
  Inv,
  Nand2,
  Nor2,
  And2,
  Or2,
  Xor2,
  Aoi21,
  Mux2,
  Dff,
};

const char* cell_kind_name(CellKind kind);
int cell_kind_num_inputs(CellKind kind);

struct LibCell {
  LibCellId id;
  std::string name;
  CellKind kind = CellKind::Buf;
  int num_inputs = 1;
  int size_index = 0;     // 0-based index within kind's size ladder
  double drive = 1.0;     // drive strength multiplier (X1 = 1, X2 = 2, ...)

  // Timing (ns, fF).
  double intrinsic_delay = 0.0;
  double drive_res = 0.0;        // ns per fF of load
  double slew_sens = 0.0;        // ns of delay per ns of input slew
  double slew_intrinsic = 0.0;   // ns
  double slew_res = 0.0;         // ns per fF of load
  double input_cap = 0.0;        // fF per input pin
  // Per-input-pin arc asymmetry (ns); makes commutative-pin swapping a real
  // optimization for the restructuring pass.
  std::vector<double> pin_delta;

  // Sequential-only (kind == Dff).
  double setup_time = 0.0;  // ns
  double hold_time = 0.0;   // ns
  double clk_to_q = 0.0;    // ns (added to intrinsic arc model)

  // Power.
  double leakage = 0.0;          // mW
  double internal_energy = 0.0;  // mW at toggle rate 1.0
  double clock_pin_cap = 0.0;    // fF (Dff only)

  [[nodiscard]] bool is_sequential() const { return kind == CellKind::Dff; }
  [[nodiscard]] bool is_port() const {
    return kind == CellKind::Input || kind == CellKind::Output;
  }

  // Arc delay input pin -> output for combinational cells, CK -> Q for DFFs.
  [[nodiscard]] double arc_delay(int input_pin, double load_cap,
                                 double input_slew) const;
  [[nodiscard]] double output_slew(double load_cap) const;
};

class Library {
 public:
  // Builds the full generic library for a technology node.
  static Library make_generic(const Tech& tech);

  [[nodiscard]] const LibCell& cell(LibCellId id) const {
    RLCCD_EXPECTS(id.index() < cells_.size());
    return cells_[id.index()];
  }
  [[nodiscard]] std::size_t size() const { return cells_.size(); }
  [[nodiscard]] const std::vector<LibCell>& cells() const { return cells_; }
  [[nodiscard]] const Tech& tech() const { return tech_; }

  // All drive sizes of a kind, ordered weakest to strongest.
  [[nodiscard]] const std::vector<LibCellId>& sizes(CellKind kind) const;

  // Canonical variant of `kind` at size ladder position `size_index`
  // (clamped to the available range).
  [[nodiscard]] LibCellId pick(CellKind kind, int size_index) const;

  // Next size up/down in the ladder; returns an invalid id at the end.
  [[nodiscard]] LibCellId upsize(LibCellId id) const;
  [[nodiscard]] LibCellId downsize(LibCellId id) const;

 private:
  LibCellId add(LibCell cell);

  Tech tech_;
  std::vector<LibCell> cells_;
  std::vector<std::vector<LibCellId>> by_kind_;
};

}  // namespace rlccd
