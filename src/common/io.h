// Status-returning file helpers with crash-safe write semantics.
//
// atomic_write_file writes to `<path>.tmp`, fsyncs, renames over the
// destination, then fsyncs the parent directory — a crash or I/O failure
// mid-write can never leave a truncated file at `path` (the previous
// contents, if any, survive), and once it returns OK the rename itself is
// durable across power loss. All binary savers (NN parameters, training
// checkpoints) and the netlist text writer go through it. Fault points
// "io_write_tmp", "io_rename" and "io_fsync_dir" inject failures at each
// step of the dance.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace rlccd {

// Crash-safe whole-file write: tmp file + fsync + rename + directory
// fsync. On failure before the rename, the temp file is removed and `path`
// is untouched; a directory-fsync failure after the rename also reports an
// error (the new file is visible but its durability is not guaranteed).
Status atomic_write_file(const std::string& path, std::string_view bytes);

// Reads the whole file into `out`.
Status read_file(const std::string& path, std::string& out);

// Creates `path` and any missing parents (mkdir -p). OK when the directory
// already exists; io_error when a component exists but is not a directory
// or creation fails. The serve layer uses it to lay out per-session
// workspaces before forking job workers into them.
Status make_dirs(const std::string& path);

// CRC-32 (IEEE 802.3 polynomial) over `bytes`; used to detect torn or
// bit-rotted checkpoint payloads.
std::uint32_t crc32(std::string_view bytes);

}  // namespace rlccd
