file(REMOVE_RECURSE
  "CMakeFiles/rlccd_designgen.dir/blocks.cpp.o"
  "CMakeFiles/rlccd_designgen.dir/blocks.cpp.o.d"
  "CMakeFiles/rlccd_designgen.dir/generator.cpp.o"
  "CMakeFiles/rlccd_designgen.dir/generator.cpp.o.d"
  "librlccd_designgen.a"
  "librlccd_designgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlccd_designgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
