file(REMOVE_RECURSE
  "CMakeFiles/rlccd_common.dir/env.cpp.o"
  "CMakeFiles/rlccd_common.dir/env.cpp.o.d"
  "CMakeFiles/rlccd_common.dir/log.cpp.o"
  "CMakeFiles/rlccd_common.dir/log.cpp.o.d"
  "CMakeFiles/rlccd_common.dir/rng.cpp.o"
  "CMakeFiles/rlccd_common.dir/rng.cpp.o.d"
  "CMakeFiles/rlccd_common.dir/table.cpp.o"
  "CMakeFiles/rlccd_common.dir/table.cpp.o.d"
  "librlccd_common.a"
  "librlccd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlccd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
