// Clock schedule: per-flop clock arrival adjustments (useful skew) plus the
// clock period. An ideal clock network is assumed — the common source
// latency cancels in single-cycle setup/hold checks, so only the per-flop
// adjustment delta matters. The useful-skew engine (src/opt/useful_skew.h)
// mutates this schedule; STA reads it.
//
// The schedule tracks which flops changed since the STA last consumed it
// (dirty_flops / ack_dirty), so a skew edit invalidates only the affected
// flop's launch/capture cones instead of the whole design.
#pragma once

#include <vector>

#include "common/contracts.h"
#include "common/ids.h"

namespace rlccd {

class ClockSchedule {
 public:
  explicit ClockSchedule(double period = 1.0) : period_(period) {}

  [[nodiscard]] double period() const { return period_; }
  void set_period(double period) {
    RLCCD_EXPECTS(period > 0.0);
    if (period == period_) return;
    period_ = period;
    period_dirty_ = true;
  }

  // Clock arrival adjustment at a flop's CK pin (ns, signed).
  [[nodiscard]] double adjustment(CellId flop) const {
    if (flop.index() >= adjustments_.size()) return 0.0;
    return adjustments_[flop.index()];
  }

  void set_adjustment(CellId flop, double delta) {
    if (flop.index() >= adjustments_.size()) {
      if (delta == 0.0) return;
      adjustments_.resize(flop.index() + 1, 0.0);
    }
    if (adjustments_[flop.index()] == delta) return;
    adjustments_[flop.index()] = delta;
    dirty_.push_back(flop);
  }

  void clear() {
    for (std::size_t i = 0; i < adjustments_.size(); ++i) {
      if (adjustments_[i] != 0.0) dirty_.push_back(CellId(
          static_cast<std::uint32_t>(i)));
    }
    adjustments_.clear();
  }

  // All nonzero adjustments (for Fig. 5-style histograms).
  [[nodiscard]] std::vector<double> nonzero_adjustments() const {
    std::vector<double> out;
    for (double d : adjustments_) {
      if (d != 0.0) out.push_back(d);
    }
    return out;
  }

  // -- incremental-STA hooks --------------------------------------------------
  // Flops whose adjustment changed since the last ack (may repeat ids).
  [[nodiscard]] const std::vector<CellId>& dirty_flops() const {
    return dirty_;
  }
  [[nodiscard]] bool period_dirty() const { return period_dirty_; }
  void ack_dirty() {
    dirty_.clear();
    period_dirty_ = false;
  }

 private:
  double period_;
  bool period_dirty_ = false;
  std::vector<double> adjustments_;  // indexed by CellId, default 0
  std::vector<CellId> dirty_;        // changed since last ack_dirty()
};

}  // namespace rlccd
