file(REMOVE_RECURSE
  "CMakeFiles/gnn_tests.dir/gnn/ep_gnn_test.cpp.o"
  "CMakeFiles/gnn_tests.dir/gnn/ep_gnn_test.cpp.o.d"
  "CMakeFiles/gnn_tests.dir/gnn/features_test.cpp.o"
  "CMakeFiles/gnn_tests.dir/gnn/features_test.cpp.o.d"
  "CMakeFiles/gnn_tests.dir/gnn/graph_test.cpp.o"
  "CMakeFiles/gnn_tests.dir/gnn/graph_test.cpp.o.d"
  "gnn_tests"
  "gnn_tests.pdb"
  "gnn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
