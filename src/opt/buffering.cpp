#include "opt/buffering.h"

#include <algorithm>
#include <vector>

namespace rlccd {

namespace {
constexpr double kInf = 1e30;
}

BufferResult run_buffering(Sta& sta, Netlist& netlist,
                           const BufferConfig& config) {
  RLCCD_SPAN("buffering");
  BufferResult result;
  sta.update();
  const Library& lib = netlist.library();

  struct Candidate {
    NetId net;
    double score;  // more negative slack x longer wire = earlier
  };
  std::vector<Candidate> candidates;
  for (const Net& n : netlist.nets()) {
    if (!n.driver.valid() || n.sinks.empty()) continue;
    const Pin& drv = netlist.pin(n.driver);
    // Skip clock-like high-fanout nets and port-driven nets.
    if (netlist.is_port(drv.cell)) continue;
    double hpwl = netlist.net_hpwl(n.id);
    if (hpwl < config.min_hpwl && n.sinks.size() < config.min_fanout) continue;
    double s = sta.slack(n.driver);
    if (s >= 0.0 || s <= -kInf) continue;
    candidates.push_back({n.id, s * (1.0 + hpwl)});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score < b.score;
            });

  for (const Candidate& cand : candidates) {
    if (result.buffers_inserted >= config.max_buffers) break;
    const Net& n = netlist.net(cand.net);
    if (n.sinks.size() < 2) continue;

    // Partition sinks by distance from the driver; the far half moves behind
    // the new buffer.
    const Cell& drv_cell = netlist.cell(netlist.pin(n.driver).cell);
    std::vector<PinId> sinks(n.sinks.begin(), n.sinks.end());
    std::sort(sinks.begin(), sinks.end(), [&](PinId a, PinId b) {
      return netlist.sink_distance(a) < netlist.sink_distance(b);
    });
    std::size_t split = sinks.size() / 2;
    std::vector<PinId> far(sinks.begin() + static_cast<long>(split),
                           sinks.end());
    if (far.empty()) continue;

    double cx = 0.0, cy = 0.0;
    for (PinId s : far) {
      const Cell& c = netlist.cell(netlist.pin(s).cell);
      cx += c.x;
      cy += c.y;
    }
    cx /= static_cast<double>(far.size());
    cy /= static_cast<double>(far.size());
    // Place the buffer between the driver and the far centroid.
    double bx = 0.5 * (drv_cell.x + cx);
    double by = 0.5 * (drv_cell.y + cy);

    LibCellId buf_lib = lib.pick(CellKind::Buf, config.buffer_size_index);
    CellId buf = netlist.add_cell(
        buf_lib, "opt_buf" + std::to_string(netlist.num_cells()));
    netlist.set_position(buf, bx, by);
    NetId new_net =
        netlist.add_net("opt_bufn" + std::to_string(netlist.num_nets()));
    netlist.set_driver(new_net, buf);
    netlist.add_sink(cand.net, buf, 0);
    for (PinId s : far) netlist.move_sink(s, new_net);

    ++result.buffers_inserted;
  }

  if (result.buffers_inserted > 0) {
    netlist.update_wire_parasitics();
  }
  sta.update();
  static MetricsCounter& ctr =
      MetricsRegistry::global().counter("opt.buffering.inserted");
  ctr.add(static_cast<std::uint64_t>(result.buffers_inserted));
  return result;
}

}  // namespace rlccd
