# Empty dependencies file for useful_skew_explorer.
# This may be replaced when dependencies are built.
