#include "rl/policy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/fault.h"
#include "common/telemetry.h"
#include "nn/serialize.h"

namespace rlccd {

Policy::Policy(const PolicyConfig& config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  Rng rng(seed);
  gnn_ = EpGnn(config.gnn, rng);
  lstm_ = LSTMCell(config.gnn.embedding, config.lstm_hidden, rng);
  attn_w1_ = Tensor::zeros(config.gnn.embedding, config.attn_dim,
                           /*requires_grad=*/true);
  attn_w2_ = Tensor::zeros(config.lstm_hidden, config.attn_dim,
                           /*requires_grad=*/true);
  attn_v_ = Tensor::zeros(config.attn_dim, 1, /*requires_grad=*/true);
  init_xavier(attn_w1_, rng);
  init_xavier(attn_w2_, rng);
  init_xavier(attn_v_, rng);
}

namespace {

// Fills one AuditStep from the masked log-softmax of this step: entropy of
// the valid distribution and the top-k probabilities (descending, ties by
// endpoint index). Pure observation — no RNG, no graph mutation.
void capture_audit_step(AuditStep& step, const Tensor& log_probs,
                        const std::vector<char>& valid) {
  double entropy = 0.0;
  std::vector<std::pair<std::uint32_t, double>> probs;
  for (std::size_t i = 0; i < log_probs.rows(); ++i) {
    if (!valid[i]) continue;
    const double lp = log_probs.at(i, 0);
    const double p = std::exp(lp);
    if (p > 0.0) entropy -= p * lp;
    probs.emplace_back(static_cast<std::uint32_t>(i), p);
  }
  step.entropy = entropy;
  const std::size_t k = std::min(SelectionAudit::kTopK, probs.size());
  std::partial_sort(probs.begin(), probs.begin() + static_cast<long>(k),
                    probs.end(), [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  probs.resize(k);
  step.top_probs = std::move(probs);
}

}  // namespace

Policy::RolloutResult Policy::rollout(const DesignGraph& graph,
                                      SelectionEnv& env, Rng& rng,
                                      bool greedy, RolloutMode mode,
                                      SelectionAudit* audit) const {
  RolloutResult result;
  if (audit != nullptr) audit->clear();
  const bool stepwise = mode != RolloutMode::FullGraph;
  const bool backward = mode == RolloutMode::StepwiseBackward;
  if (!stepwise) {
    result.log_prob_sum = Tensor::zeros(1, 1, /*requires_grad=*/true);
  }

  LSTMCell::State state = lstm_.zero_state();
  Tensor prev_embedding = Tensor::zeros(1, config_.gnn.embedding);

  while (!env.done()) {
    // 1. EP-GNN encoding with the current masked flags (Alg. 1 line 6).
    Tensor x = graph.features_with_mask(env.cell_mask_flags());
    Tensor f_ep = gnn_.forward(x, graph.adjacency(), graph.cone_matrix(),
                               graph.endpoint_rows());

    // 2. LSTM query from the previous action's embedding (Alg. 1 lines 7-8).
    state = lstm_.forward(prev_embedding, state);
    const Tensor& q = state.h;  // [1, hidden]

    // 3. Attention scores over all endpoints (Eq. 5):
    //    A_i = v^T tanh(W1 f_i + W2 q).
    Tensor scores = ops::matmul(
        ops::tanh_op(ops::add_rowvec(ops::matmul(f_ep, attn_w1_),
                                     ops::matmul(q, attn_w2_))),
        attn_v_);  // [n, 1]

    // Numerical-health guard: a NaN/Inf logit would poison the softmax, the
    // sampled action and (via backward) every parameter gradient. Stop the
    // trajectory here and let the trainer drop it instead.
    if (fault_fire("nan_logits")) {
      scores.set(0, 0, std::numeric_limits<float>::quiet_NaN());
    }
    bool logits_finite = true;
    for (std::size_t i = 0; i < scores.size(); ++i) {
      if (!std::isfinite(scores.data()[i])) {
        logits_finite = false;
        break;
      }
    }
    if (!logits_finite) {
      static MetricsCounter& ctr_nonfinite =
          MetricsRegistry::global().counter("policy.nonfinite_logits");
      ctr_nonfinite.increment();
      result.poisoned = true;
      if (audit != nullptr) audit->poisoned = true;
      break;
    }

    // 4. Masked softmax + sampling (Eq. 6, Alg. 1 line 10).
    Tensor log_probs = ops::masked_log_softmax(scores, env.valid());
    std::size_t action;
    if (greedy) {
      action = 0;
      float best = -1e30f;
      for (std::size_t i = 0; i < log_probs.rows(); ++i) {
        if (env.valid()[i] && log_probs.at(i, 0) > best) {
          best = log_probs.at(i, 0);
          action = i;
        }
      }
    } else {
      std::vector<float> probs(log_probs.rows());
      for (std::size_t i = 0; i < probs.size(); ++i) {
        probs[i] = env.valid()[i] ? std::exp(log_probs.at(i, 0)) : 0.0f;
      }
      action = rng.sample_probabilities(probs);
    }
    RLCCD_ASSERT(env.valid()[action]);

    Tensor log_p = ops::pick(log_probs, action, 0);
    result.log_prob_value += log_p.item();
    if (backward) {
      // Accumulate grad(log pi_t) into the parameter grads now and free
      // this step's graph; the caller scales by the advantage later.
      log_p.backward();
    } else if (!stepwise) {
      result.log_prob_sum = ops::add(result.log_prob_sum, log_p);
    }
    result.actions.push_back(action);

    AuditStep* audit_step = nullptr;
    if (audit != nullptr) {
      audit->steps.emplace_back();
      audit_step = &audit->steps.back();
      audit_step->chosen = static_cast<std::uint32_t>(action);
      audit_step->slack = graph.endpoint_slacks()[action];
      audit_step->log_prob = log_p.item();
      capture_audit_step(*audit_step, log_probs, env.valid());
    }

    // 5. Overlap masking (Alg. 1 line 11) and next-step LSTM input.
    prev_embedding = ops::gather_rows(f_ep, {action});
    if (stepwise) {
      // Truncated BPTT: cut the recurrent chain so each step's graph dies
      // with the step.
      prev_embedding = prev_embedding.detach_copy();
      state.h = state.h.detach_copy();
      state.c = state.c.detach_copy();
    }
    env.step(action, audit_step != nullptr ? &audit_step->masked : nullptr);
    ++result.steps;
  }

  result.selected = env.selected_pins();
  return result;
}

std::vector<Tensor> Policy::parameters() const {
  std::vector<Tensor> params = gnn_.parameters();
  for (Tensor& t : lstm_.parameters()) params.push_back(t);
  params.push_back(attn_w1_);
  params.push_back(attn_w2_);
  params.push_back(attn_v_);
  return params;
}

Policy Policy::clone() const {
  Policy copy(config_, seed_);
  std::vector<Tensor> src = parameters();
  std::vector<Tensor> dst = copy.parameters();
  copy_parameter_values(src, dst);
  return copy;
}

Status Policy::save_gnn(const std::string& path) const {
  return save_parameters(gnn_.parameters(), path);
}

Status Policy::load_gnn(const std::string& path) {
  std::vector<Tensor> params = gnn_.parameters();
  return load_parameters(params, path);
}

}  // namespace rlccd
