#include "sta/path.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rlccd {

namespace {
constexpr double kInf = 1e29;
}

TimingPath extract_critical_path(const Sta& sta, PinId endpoint) {
  RLCCD_EXPECTS(sta.is_endpoint(endpoint));
  const Netlist& nl = sta.netlist();
  TimingPath path;
  path.endpoint = endpoint;
  path.slack = sta.endpoint_slack(endpoint);

  std::vector<PathStep> reversed;
  PinId cur = endpoint;  // always an input pin here
  while (cur.valid()) {
    const PinTiming& t = sta.timing(cur);
    if (!t.reachable) break;
    reversed.push_back({cur, t.arrival_max, 0.0});

    // Hop the net arc to the driver pin.
    const Pin& p = nl.pin(cur);
    if (!p.net.valid()) break;
    const Net& net = nl.net(p.net);
    if (!net.driver.valid()) break;
    PinId drv = net.driver;
    const PinTiming& dt = sta.timing(drv);
    if (!dt.reachable) break;
    reversed.back().incr = t.arrival_max - dt.arrival_max;
    reversed.push_back({drv, dt.arrival_max, 0.0});

    // Stop at startpoints.
    CellId cell = nl.pin(drv).cell;
    const LibCell& lc = nl.lib_cell(cell);
    if (lc.is_sequential() || lc.is_port()) {
      path.startpoint = cell;
      break;
    }

    // Hop the cell arc: find the input whose arrival + arc delay realized
    // the output arrival.
    const Cell& c = nl.cell(cell);
    const Pin& out_pin = nl.pin(drv);
    double load = out_pin.net.valid() ? nl.net_load_cap(out_pin.net) : 0.0;
    PinId best;
    double best_gap = kInf;
    double best_delay = 0.0;
    for (std::size_t i = 0; i < c.inputs.size(); ++i) {
      const PinTiming& in = sta.timing(c.inputs[i]);
      if (!in.reachable) continue;
      double delay = lc.arc_delay(static_cast<int>(i), load, in.slew);
      double gap = std::abs(in.arrival_max + delay - dt.arrival_max);
      if (gap < best_gap) {
        best_gap = gap;
        best = c.inputs[i];
        best_delay = delay;
      }
    }
    if (!best.valid()) break;
    reversed.back().incr = best_delay;
    cur = best;
  }

  path.steps.assign(reversed.rbegin(), reversed.rend());
  return path;
}

TimingPath extract_worst_path(const Sta& sta) {
  PinId worst;
  double worst_slack = kInf;
  for (PinId ep : sta.endpoints()) {
    double s = sta.endpoint_slack(ep);
    if (s < worst_slack) {
      worst_slack = s;
      worst = ep;
    }
  }
  if (!worst.valid()) return TimingPath{};
  return extract_critical_path(sta, worst);
}

std::string path_to_string(const Netlist& netlist, const TimingPath& path) {
  std::ostringstream out;
  const char* start_name = path.startpoint.valid()
                               ? netlist.cell(path.startpoint).name.c_str()
                               : "?";
  out << "path to endpoint of cell "
      << netlist.cell(netlist.pin(path.endpoint).cell).name
      << " (slack " << path.slack << " ns), launched from " << start_name
      << "\n";
  for (const PathStep& step : path.steps) {
    const Pin& p = netlist.pin(step.pin);
    const Cell& c = netlist.cell(p.cell);
    out << "  " << c.name << "/"
        << (p.dir == PinDir::Output ? "out" : "in") << p.index << "  arrival "
        << step.arrival << "  +" << step.incr << "\n";
  }
  return out.str();
}

}  // namespace rlccd
