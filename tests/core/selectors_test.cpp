#include "core/selectors.h"

#include <gtest/gtest.h>

#include "designgen/generator.h"

namespace rlccd {
namespace {

struct Fixture {
  Design design;
  Sta sta;

  Fixture() : design(make()), sta(design.make_sta()) { sta.run(); }

  static Design make() {
    GeneratorConfig cfg;
    cfg.target_cells = 500;
    cfg.seed = 111;
    cfg.clock_tightness = 0.75;
    return generate_design(cfg);
  }
};

TEST(Selectors, WorstKPicksMostNegative) {
  Fixture f;
  std::vector<PinId> all = select_all_violating(f.sta);
  ASSERT_GT(all.size(), 5u);
  std::vector<PinId> worst = select_worst_k(f.sta, 5);
  ASSERT_EQ(worst.size(), 5u);
  double worst_max = -1e30;
  for (PinId ep : worst) {
    worst_max = std::max(worst_max, f.sta.endpoint_slack(ep));
  }
  // Every non-selected violating endpoint has slack >= the worst-k maximum.
  for (PinId ep : all) {
    if (std::find(worst.begin(), worst.end(), ep) != worst.end()) continue;
    EXPECT_GE(f.sta.endpoint_slack(ep), worst_max - 1e-12);
  }
}

TEST(Selectors, WorstKClampsToAvailable) {
  Fixture f;
  std::vector<PinId> all = select_all_violating(f.sta);
  EXPECT_EQ(select_worst_k(f.sta, all.size() + 100).size(), all.size());
}

TEST(Selectors, RandomKIsDeterministicPerRng) {
  Fixture f;
  Rng r1(5), r2(5), r3(6);
  std::vector<PinId> a = select_random_k(f.sta, 8, r1);
  std::vector<PinId> b = select_random_k(f.sta, 8, r2);
  std::vector<PinId> c = select_random_k(f.sta, 8, r3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 8u);
}

TEST(Selectors, AllViolatingMatchesStaReport) {
  Fixture f;
  EXPECT_EQ(select_all_violating(f.sta), f.sta.endpoint_violations());
}

TEST(Selectors, SelectionsContainOnlyViolatingEndpoints) {
  Fixture f;
  Rng rng(7);
  for (const auto& sel :
       {select_worst_k(f.sta, 6), select_random_k(f.sta, 6, rng)}) {
    for (PinId ep : sel) {
      EXPECT_TRUE(f.sta.is_endpoint(ep));
      EXPECT_LT(f.sta.endpoint_slack(ep), 0.0);
    }
  }
}

}  // namespace
}  // namespace rlccd
