// Parameter (de)serialization: a simple self-describing binary format
// ("RLCCDNN1" magic, then count and shape-prefixed float blobs). Used for
// transfer learning — a pre-trained EP-GNN is saved on one design and loaded
// on an unseen one (paper Sec. IV-B) — and by the training checkpoints.
//
// Failures return a Status with an actionable message (which tensor, which
// shape, how the file is truncated) instead of a bare bool; saves are
// crash-safe (temp file + fsync + rename), so an interrupted save never
// leaves a truncated RLCCDNN1 file behind.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

namespace rlccd {

// Writes parameter values atomically. Fault point "nn_save_io" injects an
// I/O failure before the write reaches the destination path.
Status save_parameters(const std::vector<Tensor>& params,
                       const std::string& path);

// Loads into existing tensors; count and shapes must match.
Status load_parameters(std::vector<Tensor>& params, const std::string& path);

// In-memory (de)serialization of a parameter list's values, shape-prefixed;
// shared by the file format above and the training checkpoint payload.
void append_parameters(const std::vector<Tensor>& params, std::string& out);
// Parses from `bytes` starting at `offset` (advanced past the parsed data).
Status parse_parameters(std::vector<Tensor>& params, const std::string& bytes,
                        std::size_t& offset);

// In-memory copy helpers (parallel training: clone <-> master).
void copy_parameter_values(const std::vector<Tensor>& src,
                           std::vector<Tensor>& dst);

}  // namespace rlccd
