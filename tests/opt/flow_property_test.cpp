// Flow-level invariants swept across several paper blocks (tiny scale):
// the placement flow must never make timing worse than the input, must be
// deterministic, and prioritization must preserve the hold picture.
#include <gtest/gtest.h>

#include "designgen/blocks.h"
#include "opt/flow.h"

namespace rlccd {
namespace {

class FlowSweep : public ::testing::TestWithParam<std::string> {
 protected:
  static Design make(const std::string& name) {
    return generate_design(to_generator_config(find_block(name), 0.003));
  }
  static FlowResult run(Design& d, std::span<const PinId> prio = {}) {
    Netlist work = *d.netlist;
    FlowConfig cfg =
        default_flow_config(work.num_real_cells(), d.clock_period);
    FlowInput input{d.sta_config, d.clock_period, d.die, d.pi_toggles,
                    prio};
    return run_placement_flow(work, input, cfg);
  }
};

TEST_P(FlowSweep, NeverWorsensTiming) {
  Design d = make(GetParam());
  FlowResult r = run(d);
  EXPECT_GE(r.final_summary.tns, r.begin.tns);
  EXPECT_GE(r.final_summary.wns, r.begin.wns);
  EXPECT_LE(r.final_summary.nve, r.begin.nve);
}

TEST_P(FlowSweep, HoldStaysClean) {
  Design d = make(GetParam());
  FlowResult r = run(d);
  EXPECT_GE(r.final_summary.worst_hold_slack, -1e-9)
      << "the skew engine must never trade setup for hold violations";
}

TEST_P(FlowSweep, DeterministicWithAndWithoutPrioritization) {
  Design d = make(GetParam());
  FlowResult a = run(d);
  FlowResult b = run(d);
  EXPECT_DOUBLE_EQ(a.final_summary.tns, b.final_summary.tns);

  // Prioritized runs are deterministic too.
  Netlist probe = *d.netlist;
  Sta sta(&probe, d.sta_config, d.clock_period);
  sta.run();
  std::vector<PinId> vio = sta.endpoint_violations();
  std::vector<PinId> sel(vio.begin(),
                         vio.begin() + std::min<std::size_t>(5, vio.size()));
  FlowResult c = run(d, sel);
  FlowResult e = run(d, sel);
  EXPECT_DOUBLE_EQ(c.final_summary.tns, e.final_summary.tns);
}

INSTANTIATE_TEST_SUITE_P(Blocks, FlowSweep,
                         ::testing::Values("block3", "block9", "block10",
                                           "block17"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

}  // namespace
}  // namespace rlccd
