// Developer smoke test: end-to-end RL-CCD training on one block.
//
//   smoke_rl [block] [scale] [iters] [--checkpoint-dir DIR] [--resume]
//            [--rollout-deadline SECS] [--isolate-workers]
//            [--max-worker-restarts N] [--metrics-json FILE]
//            [--metrics-csv FILE] [--trace-json FILE] [--audit-jsonl FILE]
//
// The flight-recorder flags mirror rlccd_cli: --trace-json records a
// Chrome-trace timeline, --audit-jsonl streams RL decision provenance,
// and --metrics-json/--metrics-csv dump the telemetry registry. Feed the
// artifacts to rlccd_report.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/log.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/rlccd.h"
#include "designgen/blocks.h"
#include "rl/audit.h"

using namespace rlccd;

int main(int argc, char** argv) {
  set_log_level(LogLevel::Info);
  std::string block_name = "block11";
  double scale = 0.01;
  int iters = 12;
  std::string checkpoint_dir;
  bool resume = false;
  double rollout_deadline = 0.0;
  bool isolate_workers = false;
  int max_worker_restarts = -1;
  std::string metrics_json;
  std::string metrics_csv;
  std::string trace_json;
  std::string audit_jsonl;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--checkpoint-dir") == 0 && i + 1 < argc) {
      checkpoint_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--rollout-deadline") == 0 &&
               i + 1 < argc) {
      rollout_deadline = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--isolate-workers") == 0) {
      isolate_workers = true;
    } else if (std::strcmp(argv[i], "--max-worker-restarts") == 0 &&
               i + 1 < argc) {
      max_worker_restarts = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_json = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-csv") == 0 && i + 1 < argc) {
      metrics_csv = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-json") == 0 && i + 1 < argc) {
      trace_json = argv[++i];
    } else if (std::strcmp(argv[i], "--audit-jsonl") == 0 && i + 1 < argc) {
      audit_jsonl = argv[++i];
    } else if (positional == 0) {
      block_name = argv[i];
      ++positional;
    } else if (positional == 1) {
      scale = std::atof(argv[i]);
      ++positional;
    } else if (positional == 2) {
      iters = std::atoi(argv[i]);
      ++positional;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  if (!trace_json.empty()) TraceRecorder::global().enable();
  std::unique_ptr<JsonlAuditWriter> audit;
  if (!audit_jsonl.empty()) {
    Status s = JsonlAuditWriter::open(audit_jsonl, audit);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
  }

  Design design =
      generate_design(to_generator_config(find_block(block_name), scale));
  RlCcdConfig cfg = RlCcdConfig::for_design(design);
  cfg.train.max_iterations = iters;
  cfg.train.workers = 8;
  cfg.train.checkpoint_dir = checkpoint_dir;
  cfg.train.resume = resume;
  cfg.train.rollout_deadline_sec = rollout_deadline;
  cfg.train.isolate_workers = isolate_workers;
  if (max_worker_restarts >= 0) {
    cfg.train.max_worker_restarts = max_worker_restarts;
  }
  if (audit != nullptr) cfg.audit = audit.get();

  RlCcd agent(&design, cfg);
  RlCcdResult r = agent.run();

  std::printf("\n=== %s (%zu cells) ===\n", design.name.c_str(),
              design.netlist->num_real_cells());
  std::printf("begin   TNS %9.3f\n", r.train.begin_tns);
  std::printf("default TNS %9.3f NVE %zu\n", r.default_flow.final_summary.tns,
              r.default_flow.final_summary.nve);
  std::printf("RL-CCD  TNS %9.3f NVE %zu (|sel|=%zu)  gain %.1f%% TNS, "
              "%.1f%% NVE, runtime x%.1f\n",
              r.rl_flow.final_summary.tns, r.rl_flow.final_summary.nve, r.selection.size(),
              r.tns_gain_pct(), r.nve_gain_pct(), r.runtime_factor);

  if (!metrics_json.empty()) {
    if (!MetricsRegistry::global().write_json(metrics_json)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_json.c_str());
      return 1;
    }
    std::printf("telemetry written to %s\n", metrics_json.c_str());
  }
  if (!metrics_csv.empty()) {
    if (!MetricsRegistry::global().write_csv(metrics_csv)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_csv.c_str());
      return 1;
    }
    std::printf("telemetry written to %s\n", metrics_csv.c_str());
  }
  if (!trace_json.empty()) {
    TraceRecorder& rec = TraceRecorder::global();
    rec.disable();
    if (!rec.write_chrome_json(trace_json)) {
      std::fprintf(stderr, "cannot write %s\n", trace_json.c_str());
      return 1;
    }
    std::printf("trace written to %s (%llu events, %llu dropped)\n",
                trace_json.c_str(),
                static_cast<unsigned long long>(rec.buffered_events()),
                static_cast<unsigned long long>(rec.dropped_events()));
  }
  if (audit != nullptr) {
    Status s = audit->close();
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("audit written to %s\n", audit_jsonl.c_str());
  }
  return 0;
}
