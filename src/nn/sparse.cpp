#include "nn/sparse.h"

#include <algorithm>

namespace rlccd {

SparseMatrix SparseMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                         std::vector<Triplet> triplets) {
  SparseMatrix m;
  m.rows = rows;
  m.cols = cols;
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.row != b.row) return a.row < b.row;
              return a.col < b.col;
            });
  m.row_ptr.assign(rows + 1, 0);
  m.col_idx.reserve(triplets.size());
  m.values.reserve(triplets.size());
  bool have_last = false;
  std::uint32_t last_row = 0;
  for (const Triplet& t : triplets) {
    RLCCD_EXPECTS(t.row < rows && t.col < cols);
    // Duplicates (same row/col) merge by summation.
    if (have_last && last_row == t.row && m.col_idx.back() == t.col) {
      m.values.back() += t.value;
      continue;
    }
    m.col_idx.push_back(t.col);
    m.values.push_back(t.value);
    ++m.row_ptr[t.row + 1];
    last_row = t.row;
    have_last = true;
  }
  for (std::size_t r = 0; r < rows; ++r) m.row_ptr[r + 1] += m.row_ptr[r];
  return m;
}

SparseMatrix SparseMatrix::transposed() const {
  SparseMatrix t;
  t.rows = cols;
  t.cols = rows;
  t.row_ptr.assign(cols + 1, 0);
  for (std::uint32_t c : col_idx) ++t.row_ptr[c + 1];
  for (std::size_t r = 0; r < cols; ++r) t.row_ptr[r + 1] += t.row_ptr[r];
  t.col_idx.assign(nnz(), 0);
  t.values.assign(nnz(), 0.0f);
  std::vector<std::uint32_t> cursor(t.row_ptr.begin(), t.row_ptr.end() - 1);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::uint32_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      std::uint32_t c = col_idx[k];
      std::uint32_t pos = cursor[c]++;
      t.col_idx[pos] = static_cast<std::uint32_t>(r);
      t.values[pos] = values[k];
    }
  }
  return t;
}

}  // namespace rlccd
