#ifndef _WIN32

#include "serve/socket.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace rlccd {
namespace serve {

namespace {

double mono_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status fill_addr(const std::string& path, sockaddr_un& addr) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::invalid_argument(
        "socket path must be 1..%zu bytes, got %zu",
        sizeof(addr.sun_path) - 1, path.size());
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return Status();
}

}  // namespace

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::io_error("fcntl(O_NONBLOCK): %s", std::strerror(errno));
  }
  return Status();
}

Status unix_listen(const std::string& path, int& fd_out) {
  sockaddr_un addr;
  RLCCD_TRY(fill_addr(path, addr));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::io_error("socket: %s", std::strerror(errno));
  }
  // The daemon owns its socket path: a stale file from a previous run (or a
  // crashed daemon) must not block startup.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status s =
        Status::io_error("bind %s: %s", path.c_str(), std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) < 0) {
    const Status s =
        Status::io_error("listen %s: %s", path.c_str(), std::strerror(errno));
    ::close(fd);
    return s;
  }
  Status nb = set_nonblocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  fd_out = fd;
  return Status();
}

Status unix_accept(int listen_fd, int& fd_out) {
  fd_out = -1;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
      Status nb = set_nonblocking(fd);
      if (!nb.ok()) {
        ::close(fd);
        return nb;
      }
      fd_out = fd;
      return Status();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return Status();  // nothing pending (or the peer already gave up)
    }
    return Status::io_error("accept: %s", std::strerror(errno));
  }
}

Status unix_connect(const std::string& path, double timeout_sec,
                    int& fd_out) {
  sockaddr_un addr;
  RLCCD_TRY(fill_addr(path, addr));
  const double deadline = mono_sec() + (timeout_sec > 0.0 ? timeout_sec : 0.0);
  Status last = Status::io_error("connect %s: never attempted", path.c_str());
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      return Status::io_error("socket: %s", std::strerror(errno));
    }
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      fd_out = fd;
      return Status();
    }
    last = Status::io_error("connect %s: %s", path.c_str(),
                            std::strerror(errno));
    ::close(fd);
    if (timeout_sec <= 0.0 || mono_sec() >= deadline) return last;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

Status recv_frame(int fd, FrameDecoder& decoder, Frame& frame,
                  double timeout_sec) {
  const double deadline =
      timeout_sec > 0.0 ? mono_sec() + timeout_sec : 0.0;
  for (;;) {
    if (decoder.next(frame)) return Status();
    if (!decoder.error().ok()) return decoder.error();

    int timeout_ms = -1;
    if (deadline > 0.0) {
      const double left = deadline - mono_sec();
      if (left <= 0.0) {
        return Status::io_error("timeout waiting for a frame");
      }
      timeout_ms = static_cast<int>(left * 1e3) + 1;
    }
    pollfd pfd{fd, POLLIN, 0};
    int pr;
    do {
      pr = ::poll(&pfd, 1, timeout_ms);
    } while (pr < 0 && errno == EINTR);
    if (pr < 0) {
      return Status::io_error("poll: %s", std::strerror(errno));
    }
    if (pr == 0) continue;  // deadline re-checked above

    bool eof = false;
    RLCCD_TRY(read_available(fd, decoder, eof));
    if (eof && !decoder.next(frame)) {
      if (decoder.mid_frame()) {
        return Status::corrupt("connection closed mid-frame");
      }
      return Status::io_error("connection closed");
    }
    if (eof) return Status();  // the buffered bytes completed a frame
  }
}

}  // namespace serve
}  // namespace rlccd

#endif  // !_WIN32
