// Frozen per-design artifacts shared by every rollout: the pristine STA
// snapshot's Table-I features, the message-passing adjacency, the violating
// endpoints with their fan-in cones (Eq. 3 / overlap masking), and the
// cone-sum matrix. Built once; read-only afterwards (workers share it).
#pragma once

#include <memory>
#include <vector>

#include "designgen/generator.h"
#include "gnn/features.h"
#include "gnn/graph.h"
#include "sta/cone.h"

namespace rlccd {

class DesignGraph {
 public:
  // Runs a pristine STA on the design and precomputes all graph artifacts.
  explicit DesignGraph(const Design& design);

  [[nodiscard]] const Design& design() const { return *design_; }
  [[nodiscard]] const std::vector<PinId>& violating() const {
    return violating_;
  }
  [[nodiscard]] std::size_t num_endpoints() const { return violating_.size(); }
  [[nodiscard]] const ConeIndex& cones() const { return *cones_; }
  [[nodiscard]] const SparseOperand& adjacency() const { return *adj_; }
  [[nodiscard]] const SparseOperand& cone_matrix() const { return *cone_mat_; }
  [[nodiscard]] const std::vector<std::size_t>& endpoint_rows() const {
    return ep_rows_;
  }
  // Endpoint slack on the pristine design (env/bench reporting).
  [[nodiscard]] const std::vector<double>& endpoint_slacks() const {
    return slacks_;
  }
  [[nodiscard]] double begin_tns() const { return begin_tns_; }

  // Feature matrix with the RL-masked column set from per-cell flags.
  [[nodiscard]] Tensor features_with_mask(
      const std::vector<char>& cell_flag) const;

 private:
  const Design* design_;
  std::vector<PinId> violating_;
  std::unique_ptr<ConeIndex> cones_;
  std::unique_ptr<SparseOperand> adj_;
  std::unique_ptr<SparseOperand> cone_mat_;
  std::vector<std::size_t> ep_rows_;
  std::vector<double> slacks_;
  double begin_tns_ = 0.0;
  Tensor base_features_;
};

}  // namespace rlccd
