#include "common/log.h"

#include <gtest/gtest.h>

namespace rlccd {
namespace {

TEST(Log, LevelRoundTrip) {
  LogLevel before = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(before);
}

TEST(Log, OrderingMatchesSeverity) {
  EXPECT_LT(LogLevel::Debug, LogLevel::Info);
  EXPECT_LT(LogLevel::Info, LogLevel::Warn);
  EXPECT_LT(LogLevel::Warn, LogLevel::Error);
  EXPECT_LT(LogLevel::Error, LogLevel::Off);
}

TEST(Log, SuppressedMessagesDoNotCrash) {
  LogLevel before = log_level();
  set_log_level(LogLevel::Off);
  RLCCD_LOG_ERROR("suppressed %d", 1);
  RLCCD_LOG_DEBUG("suppressed %s", "too");
  set_log_level(before);
  SUCCEED();
}

}  // namespace
}  // namespace rlccd
