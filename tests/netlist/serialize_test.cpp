#include "netlist/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/fault.h"
#include "designgen/generator.h"
#include "helpers/test_circuits.h"
#include "sta/sta.h"

namespace rlccd {
namespace {

using testing::Pipeline;

TEST(NetlistSerialize, RoundTripPreservesStructure) {
  Pipeline p;
  std::stringstream buf;
  write_netlist(*p.c.nl, buf);
  std::unique_ptr<Netlist> loaded;
  ASSERT_TRUE(read_netlist(*p.c.lib, buf, loaded).ok());
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->num_cells(), p.c.nl->num_cells());
  EXPECT_EQ(loaded->num_nets(), p.c.nl->num_nets());
  EXPECT_EQ(loaded->num_pins(), p.c.nl->num_pins());
  for (const Cell& c : p.c.nl->cells()) {
    const Cell& l = loaded->cell(c.id);
    EXPECT_EQ(l.name, c.name);
    EXPECT_EQ(l.lib, c.lib);
    EXPECT_DOUBLE_EQ(l.x, c.x);
  }
}

TEST(NetlistSerialize, RoundTripPreservesTiming) {
  GeneratorConfig cfg;
  cfg.target_cells = 400;
  cfg.seed = 131;
  Design d = generate_design(cfg);
  std::stringstream buf;
  write_netlist(*d.netlist, buf);
  std::unique_ptr<Netlist> loaded;
  ASSERT_TRUE(read_netlist(*d.library, buf, loaded).ok());
  ASSERT_NE(loaded, nullptr);

  Sta orig(d.netlist.get(), d.sta_config, d.clock_period);
  Sta copy(loaded.get(), d.sta_config, d.clock_period);
  orig.run();
  copy.run();
  EXPECT_NEAR(orig.summary().tns, copy.summary().tns, 1e-9);
  EXPECT_EQ(orig.summary().nve, copy.summary().nve);
}

TEST(NetlistSerialize, RejectsBadHeader) {
  Pipeline p;
  std::stringstream buf("not a netlist\n");
  std::unique_ptr<Netlist> loaded;
  Status s = read_netlist(*p.c.lib, buf, loaded);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorrupt);
  EXPECT_EQ(loaded, nullptr);
}

TEST(NetlistSerialize, RejectsTechMismatch) {
  Pipeline p;  // N12
  std::stringstream buf;
  write_netlist(*p.c.nl, buf);
  Library n5 = Library::make_generic(make_tech(TechNode::N5));
  std::unique_ptr<Netlist> loaded;
  Status s = read_netlist(n5, buf, loaded);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("technology"), std::string::npos) << s.message();
  EXPECT_EQ(loaded, nullptr);
}

TEST(NetlistSerialize, DiagnosesUnknownLibCellWithLineNumber) {
  Pipeline p;
  std::stringstream buf;
  write_netlist(*p.c.nl, buf);
  std::string text = buf.str();
  // Corrupt the first cell record's libcell name.
  std::size_t pos = text.find("cell ");
  ASSERT_NE(pos, std::string::npos);
  std::size_t name_start = text.find(' ', pos + 5) + 1;
  std::size_t name_end = text.find(' ', name_start);
  text.replace(name_start, name_end - name_start, "BOGUSCELL");
  std::stringstream corrupt(text);
  std::unique_ptr<Netlist> loaded;
  Status s = read_netlist(*p.c.lib, corrupt, loaded);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("BOGUSCELL"), std::string::npos) << s.message();
}

TEST(NetlistSerialize, FileRoundTrip) {
  Pipeline p;
  std::string path = std::string(::testing::TempDir()) + "/netlist.txt";
  ASSERT_TRUE(write_netlist_file(*p.c.nl, path).ok());
  std::unique_ptr<Netlist> loaded;
  ASSERT_TRUE(read_netlist_file(*p.c.lib, path, loaded).ok());
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->num_cells(), p.c.nl->num_cells());
  std::remove(path.c_str());
  Status missing = read_netlist_file(*p.c.lib, path, loaded);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(loaded, nullptr);
}

TEST(NetlistSerialize, InjectedWriteFaultReturnsIoError) {
  Pipeline p;
  FaultInjector::global().reset();
  FaultInjector::global().arm({"netlist_save_io", 1, 1, 0.0});
  std::string path = std::string(::testing::TempDir()) + "/fault_netlist.txt";
  Status s = write_netlist_file(*p.c.nl, path);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  // The next write (fault exhausted) succeeds.
  EXPECT_TRUE(write_netlist_file(*p.c.nl, path).ok());
  FaultInjector::global().reset();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rlccd
