// Figure 5 reproduction: histogram of clock-arrival adjustments on block11.
//
// The paper shows that by prioritizing 74 endpoints, RL-CCD shifts the
// useful-skew engine's behaviour: the adjustment distribution gains mass at
// larger magnitudes. We run the default flow and the RL-CCD flow on block11
// and print juxtaposed bucket counts of |clock arrival adjustment|.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/table.h"

using namespace rlccd;
using namespace rlccd::bench;

int main() {
  set_log_level(LogLevel::Warn);
  print_header("Figure 5: clock arrival adjustments on block11");
  BenchTier t = tier();

  const BlockSpec& spec = find_block("block11");
  Design design = generate_design(to_generator_config(spec, t.scale));
  RlCcdConfig cfg = agent_config(design, t);
  cfg.train.max_iterations *= 2;  // this figure wants a converged agent
  cfg.train.patience += 1;
  RlCcd agent(&design, cfg);
  RlCcdResult r = agent.run();

  FlowResult rl_flow = r.rl_flow;
  if (r.selection.empty()) {
    // The agent decided the empty selection is best on this regeneration;
    // for the histogram, show the greedy-decoded selection's effect anyway.
    std::printf("note: best RL selection is empty at this scale — showing "
                "the greedy-decoded selection's skew impact instead.\n");
    ReinforceTrainer trainer(&design, &agent.policy(), cfg.train);
    SelectionEnv env(&trainer.graph(), cfg.train.overlap_threshold);
    Rng rng(3);
    Policy::RolloutResult ro =
        agent.policy().rollout(trainer.graph(), env, rng, /*greedy=*/true,
                               Policy::RolloutMode::Inference);
    r.selection = ro.selected;
    rl_flow = trainer.evaluate_selection(r.selection);
  }

  std::vector<double> def_adj = r.default_flow.final_clock.nonzero_adjustments();
  std::vector<double> rl_adj = rl_flow.final_clock.nonzero_adjustments();

  double max_abs = 1e-9;
  for (double d : def_adj) max_abs = std::max(max_abs, std::abs(d));
  for (double d : rl_adj) max_abs = std::max(max_abs, std::abs(d));

  constexpr int kBuckets = 8;
  auto histogram = [&](const std::vector<double>& adj) {
    std::vector<int> h(kBuckets, 0);
    for (double d : adj) {
      int b = std::min(kBuckets - 1,
                       static_cast<int>(std::abs(d) / max_abs * kBuckets));
      ++h[static_cast<std::size_t>(b)];
    }
    return h;
  };
  std::vector<int> def_h = histogram(def_adj);
  std::vector<int> rl_h = histogram(rl_adj);

  std::printf("RL-CCD prioritized %zu endpoints before useful skew "
              "(paper: 74 on the 180K-cell block11)\n\n",
              r.selection.size());
  TablePrinter table({"|adjustment| range (ns)", "default flow", "RL-CCD",
                      "delta"});
  for (int b = 0; b < kBuckets; ++b) {
    char range[64];
    std::snprintf(range, sizeof(range), "%.3f - %.3f",
                  max_abs * b / kBuckets, max_abs * (b + 1) / kBuckets);
    table.add_row({range, std::to_string(def_h[static_cast<std::size_t>(b)]),
                   std::to_string(rl_h[static_cast<std::size_t>(b)]),
                   std::to_string(rl_h[static_cast<std::size_t>(b)] -
                                  def_h[static_cast<std::size_t>(b)])});
  }
  table.print();

  double def_mean = 0.0, rl_mean = 0.0;
  for (double d : def_adj) def_mean += std::abs(d);
  for (double d : rl_adj) rl_mean += std::abs(d);
  if (!def_adj.empty()) def_mean /= static_cast<double>(def_adj.size());
  if (!rl_adj.empty()) rl_mean /= static_cast<double>(rl_adj.size());
  std::printf("\nadjusted flops: default %zu, RL-CCD %zu\n", def_adj.size(),
              rl_adj.size());
  std::printf("mean |adjustment|: default %.4f ns, RL-CCD %.4f ns\n",
              def_mean, rl_mean);
  std::printf("final TNS: default %.2f, RL-CCD %.2f (-%.1f%%)\n",
              r.default_flow.final_summary.tns, rl_flow.final_summary.tns,
              r.tns_gain_pct());
  return 0;
}
