#include "netlist/tech.h"

#include <gtest/gtest.h>

namespace rlccd {
namespace {

TEST(Tech, PresetsExistForAllNodes) {
  for (TechNode node : {TechNode::N5, TechNode::N7, TechNode::N12}) {
    Tech t = make_tech(node);
    EXPECT_EQ(t.node, node);
    EXPECT_GT(t.wire_cap_per_um, 0.0);
    EXPECT_GT(t.wire_res_per_um, 0.0);
    EXPECT_GT(t.delay_scale, 0.0);
    EXPECT_GT(t.default_clock_period, 0.0);
    EXPECT_STREQ(t.name.c_str(), tech_node_name(node));
  }
}

TEST(Tech, NewerNodesAreFasterDenserLeakier) {
  Tech n5 = make_tech(TechNode::N5);
  Tech n7 = make_tech(TechNode::N7);
  Tech n12 = make_tech(TechNode::N12);
  EXPECT_LT(n5.delay_scale, n7.delay_scale);
  EXPECT_LT(n7.delay_scale, n12.delay_scale);
  EXPECT_LT(n5.cell_pitch_um, n12.cell_pitch_um);
  EXPECT_GT(n5.leakage_scale, n12.leakage_scale);
  EXPECT_LT(n5.default_clock_period, n12.default_clock_period);
}

}  // namespace
}  // namespace rlccd
