// Transfer learning (paper Sec. IV-B): pre-train EP-GNN on same-technology
// donor blocks, then fine-tune on an unseen block with a fresh
// encoder/decoder, and compare convergence against training from scratch.
//
//   ./examples/transfer_learning [target_block] [scale]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/log.h"
#include "common/table.h"
#include "core/rlccd.h"
#include "designgen/blocks.h"

using namespace rlccd;

int main(int argc, char** argv) {
  set_log_level(LogLevel::Warn);
  std::string target = argc > 1 ? argv[1] : "block19";
  double scale = argc > 2 ? std::atof(argv[2]) : 0.005;

  const BlockSpec& target_spec = find_block(target);
  std::string gnn_path = "/tmp/rlccd_pretrained_gnn.bin";

  // 1. Pre-train on a same-technology donor block.
  std::string donor;
  for (const BlockSpec& b : paper_blocks()) {
    if (b.tech == target_spec.tech && b.name != target) {
      donor = b.name;
      break;
    }
  }
  std::printf("pre-training EP-GNN on %s (%s), transferring to %s\n\n",
              donor.c_str(), tech_node_name(target_spec.tech),
              target.c_str());
  {
    Design d = generate_design(to_generator_config(find_block(donor), scale));
    RlCcdConfig cfg = RlCcdConfig::for_design(d);
    cfg.train.workers = 4;
    cfg.train.max_iterations = 8;
    RlCcd agent(&d, cfg);
    agent.run();
    Status s = agent.save_gnn(gnn_path);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot save EP-GNN: %s\n", s.to_string().c_str());
      return 1;
    }
  }

  // 2. Train on the target: scratch vs pre-trained EP-GNN.
  Design d = generate_design(to_generator_config(target_spec, scale));
  auto train = [&](const std::string& pretrained) {
    RlCcdConfig cfg = RlCcdConfig::for_design(d);
    cfg.train.workers = 4;
    cfg.train.max_iterations = 10;
    cfg.train.patience = 10;  // run to the iteration cap for a full curve
    cfg.pretrained_gnn = pretrained;
    cfg.policy_seed = 99;
    RlCcd agent(&d, cfg);
    return agent.run();
  };
  RlCcdResult scratch = train("");
  RlCcdResult transfer = train(gnn_path);

  TablePrinter t({"iter", "scratch best TNS", "transfer best TNS"});
  std::size_t n = std::max(scratch.train.history.size(),
                           transfer.train.history.size());
  for (std::size_t i = 0; i < n; ++i) {
    auto cell = [&](const RlCcdResult& r) {
      if (i < r.train.history.size()) {
        return TablePrinter::fmt(r.train.history[i].best_tns, 3);
      }
      return std::string("-");
    };
    t.add_row({std::to_string(i), cell(scratch), cell(transfer)});
  }
  t.print();

  // First iteration at which each run reaches within 5% of its final best.
  auto convergence_iter = [](const RlCcdResult& r) {
    double goal = r.train.best_tns - 0.05 * std::abs(r.train.best_tns);
    for (std::size_t i = 0; i < r.train.history.size(); ++i) {
      if (r.train.history[i].best_tns >= goal) return i;
    }
    return r.train.history.size();
  };
  std::printf("\nscratch : best TNS %.3f, ~converged at iter %zu\n",
              scratch.train.best_tns, convergence_iter(scratch));
  std::printf("transfer: best TNS %.3f, ~converged at iter %zu\n",
              transfer.train.best_tns, convergence_iter(transfer));
  std::remove(gnn_path.c_str());
  return 0;
}
