// End-to-end daemon tests: an in-process ServeDaemon event loop on its own
// thread, driven through ServeClient over the real Unix socket. Covers the
// submit/wait happy path, injected worker crashes with automatic retry,
// admission rejection and priority shedding under overload, cancel of both
// queued and running jobs, the injected accept/disconnect fault points, and
// the SIGTERM-equivalent graceful drain.
#include "serve/daemon.h"

#ifndef _WIN32

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "common/fault.h"
#include "serve/client.h"

namespace rlccd {
namespace serve {
namespace {

// Pulls the integer after `"key":` out of the stats JSON; -1 when absent.
// (Telemetry counters are process-global, so tests assert deltas or >=.)
long long json_int(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  auto pos = json.find(needle);
  if (pos == std::string::npos) return -1;
  return std::atoll(json.c_str() + pos + needle.size());
}

JobSpec noop_spec(const std::string& session, double noop_sec = 0.05,
                  int priority = 0) {
  JobSpec spec;
  spec.session = session;
  spec.kind = JobKind::kNoop;
  spec.noop_sec = noop_sec;
  spec.priority = priority;
  return spec;
}

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::global().reset(); }

  void TearDown() override {
    if (daemon_ != nullptr) stop_daemon();
    FaultInjector::global().reset();
  }

  void start_daemon(ServeConfig cfg) {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string base = ::testing::TempDir() + "rlccd_serve_" +
                             info->name() + "_" +
                             std::to_string(::getpid());
    cfg.socket_path = base + ".sock";
    cfg.root_dir = base;
    socket_path_ = cfg.socket_path;
    daemon_ = std::make_unique<ServeDaemon>(cfg);
    Status s = daemon_->init();
    ASSERT_TRUE(s.ok()) << s.to_string();
    thread_ = std::thread([this] { exit_code_ = daemon_->run(); });
  }

  int stop_daemon() {
    daemon_->request_shutdown();
    if (thread_.joinable()) thread_.join();
    daemon_.reset();
    return exit_code_;
  }

  std::string socket_path_;
  std::unique_ptr<ServeDaemon> daemon_;
  std::thread thread_;
  int exit_code_ = -1;
};

TEST_F(DaemonTest, NoopJobRunsToDoneWithStableDigest) {
  start_daemon(ServeConfig{});
  ServeClient client;
  ASSERT_TRUE(client.connect(socket_path_).ok());

  SubmitReply reply;
  ASSERT_TRUE(client.submit(noop_spec("alpha"), reply).ok());
  ASSERT_TRUE(reply.accepted) << reply.reason;

  JobStatus status;
  ASSERT_TRUE(client.wait(reply.job_id, status, /*timeout_sec=*/20.0).ok());
  EXPECT_EQ(status.state, JobState::kDone);
  EXPECT_EQ(status.attempts, 1);
  EXPECT_NE(status.result_digest, 0u);

  // Same spec, same digest: the result identity clients diff against.
  SubmitReply reply2;
  ASSERT_TRUE(client.submit(noop_spec("alpha"), reply2).ok());
  JobStatus status2;
  ASSERT_TRUE(client.wait(reply2.job_id, status2, 20.0).ok());
  EXPECT_EQ(status2.state, JobState::kDone);
  EXPECT_EQ(status2.result_digest, status.result_digest);

  std::string stats;
  ASSERT_TRUE(client.stats_json(stats).ok());
  EXPECT_EQ(json_int(stats, "depth"), 0);
  EXPECT_EQ(json_int(stats, "running"), 0);
  EXPECT_NE(stats.find("\"name\":\"alpha\""), std::string::npos) << stats;

  ASSERT_TRUE(client.shutdown().ok());
  if (thread_.joinable()) thread_.join();
  EXPECT_EQ(exit_code_, 0);
  daemon_.reset();
}

TEST_F(DaemonTest, InvalidSubmitsAreRejectedWithReason) {
  start_daemon(ServeConfig{});
  ServeClient client;
  ASSERT_TRUE(client.connect(socket_path_).ok());

  JobSpec bad_session = noop_spec("no/slashes");
  SubmitReply reply;
  ASSERT_TRUE(client.submit(bad_session, reply).ok());
  EXPECT_FALSE(reply.accepted);
  EXPECT_FALSE(reply.reason.empty());

  JobSpec bad_block = noop_spec("ok");
  bad_block.kind = JobKind::kTrain;
  bad_block.block = "no_such_block";
  ASSERT_TRUE(client.submit(bad_block, reply).ok());
  EXPECT_FALSE(reply.accepted);
  EXPECT_NE(reply.reason.find("block"), std::string::npos) << reply.reason;

  JobSpec bad_scale = noop_spec("ok");
  bad_scale.kind = JobKind::kTrain;
  bad_scale.scale = 0.0;
  ASSERT_TRUE(client.submit(bad_scale, reply).ok());
  EXPECT_FALSE(reply.accepted);
}

TEST_F(DaemonTest, InjectedWorkerCrashRetriesToCompletion) {
  ServeConfig cfg;
  cfg.retry_backoff_base_sec = 0.01;  // keep the test fast
  start_daemon(cfg);
  ServeClient client;
  ASSERT_TRUE(client.connect(socket_path_).ok());

  std::string before;
  ASSERT_TRUE(client.stats_json(before).ok());
  const long long retried_before = json_int(before, "serve.jobs_retried");

  // First spawn dies with _exit(3) before doing any work; the daemon must
  // classify the crash, back off, and rerun to an identical result.
  FaultInjector::global().arm({"serve_worker_crash", /*hit=*/1, /*count=*/1});
  SubmitReply reply;
  ASSERT_TRUE(client.submit(noop_spec("crashy"), reply).ok());
  ASSERT_TRUE(reply.accepted) << reply.reason;

  JobStatus status;
  ASSERT_TRUE(client.wait(reply.job_id, status, 20.0).ok());
  EXPECT_EQ(status.state, JobState::kDone);
  EXPECT_EQ(status.attempts, 2) << "one crashed attempt plus the retry";

  std::string after;
  ASSERT_TRUE(client.stats_json(after).ok());
  EXPECT_GE(json_int(after, "serve.jobs_retried"), retried_before + 1);
}

TEST_F(DaemonTest, RetriesExhaustedEndsFailedNotSilent) {
  ServeConfig cfg;
  cfg.job_retries = 1;
  cfg.retry_backoff_base_sec = 0.01;
  start_daemon(cfg);
  ServeClient client;
  ASSERT_TRUE(client.connect(socket_path_).ok());

  // Both the first attempt and its one retry crash.
  FaultInjector::global().arm({"serve_worker_crash", /*hit=*/1, /*count=*/2});
  SubmitReply reply;
  ASSERT_TRUE(client.submit(noop_spec("doomed"), reply).ok());
  ASSERT_TRUE(reply.accepted);

  JobStatus status;
  ASSERT_TRUE(client.wait(reply.job_id, status, 20.0).ok());
  EXPECT_EQ(status.state, JobState::kFailed);
  EXPECT_EQ(status.attempts, 2);
  EXPECT_FALSE(status.detail.empty()) << "failure must carry a reason";
}

TEST_F(DaemonTest, OverloadRejectsEqualAndShedsLowerPriority) {
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.queue.max_queue_depth = 1;
  start_daemon(cfg);
  ServeClient client;
  ASSERT_TRUE(client.connect(socket_path_).ok());

  // Occupy the single worker with a long job, then fill the queue.
  SubmitReply running;
  ASSERT_TRUE(client.submit(noop_spec("s", /*noop_sec=*/10.0), running).ok());
  ASSERT_TRUE(running.accepted);
  // Give the loop a beat to dispatch it out of the queue.
  for (int i = 0; i < 100; ++i) {
    std::string stats;
    ASSERT_TRUE(client.stats_json(stats).ok());
    if (json_int(stats, "running") == 1 && json_int(stats, "depth") == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  SubmitReply queued;
  ASSERT_TRUE(client.submit(noop_spec("s", 0.05, /*priority=*/0), queued).ok());
  ASSERT_TRUE(queued.accepted);

  // Queue full + equal priority: rejected with a concrete reason.
  SubmitReply rejected;
  ASSERT_TRUE(client.submit(noop_spec("s", 0.05, 0), rejected).ok());
  EXPECT_FALSE(rejected.accepted);
  EXPECT_NE(rejected.reason.find("queue full"), std::string::npos)
      << rejected.reason;

  // Queue full + strictly higher priority: admitted, lower-priority queued
  // job shed.
  SubmitReply high;
  ASSERT_TRUE(client.submit(noop_spec("s", 0.05, /*priority=*/5), high).ok());
  ASSERT_TRUE(high.accepted) << high.reason;
  JobStatus shed_status;
  ASSERT_TRUE(client.poll_job(queued.job_id, shed_status).ok());
  EXPECT_EQ(shed_status.state, JobState::kShed);
  EXPECT_NE(shed_status.detail.find("shed"), std::string::npos);

  // Cancel the long runner; the high-priority job then completes.
  JobStatus cancel_status;
  ASSERT_TRUE(client.cancel(running.job_id, cancel_status).ok());
  JobStatus final_running;
  ASSERT_TRUE(client.wait(running.job_id, final_running, 20.0).ok());
  EXPECT_EQ(final_running.state, JobState::kCancelled);

  JobStatus final_high;
  ASSERT_TRUE(client.wait(high.job_id, final_high, 20.0).ok());
  EXPECT_EQ(final_high.state, JobState::kDone);
}

TEST_F(DaemonTest, CancelQueuedJobIsTerminalImmediately) {
  ServeConfig cfg;
  cfg.workers = 1;
  start_daemon(cfg);
  ServeClient client;
  ASSERT_TRUE(client.connect(socket_path_).ok());

  SubmitReply running;
  ASSERT_TRUE(client.submit(noop_spec("s", 10.0), running).ok());
  SubmitReply queued;
  ASSERT_TRUE(client.submit(noop_spec("s"), queued).ok());
  ASSERT_TRUE(queued.accepted);

  JobStatus status;
  ASSERT_TRUE(client.cancel(queued.job_id, status).ok());
  EXPECT_EQ(status.state, JobState::kCancelled);

  ASSERT_TRUE(client.cancel(running.job_id, status).ok());
  JobStatus final_status;
  ASSERT_TRUE(client.wait(running.job_id, final_status, 20.0).ok());
  EXPECT_EQ(final_status.state, JobState::kCancelled);
}

TEST_F(DaemonTest, AcceptFailAndClientDisconnectFaultsAreSurvivable) {
  start_daemon(ServeConfig{});

  // serve_accept_fail: the first accepted connection is dropped on the
  // floor; the client's connect-retry loop lands the second one.
  FaultInjector::global().arm({"serve_accept_fail", /*hit=*/1, /*count=*/1});
  ServeClient client;
  ASSERT_TRUE(client.connect(socket_path_, /*timeout_sec=*/10.0).ok());

  std::string stats;
  ASSERT_TRUE(client.stats_json(stats).ok());
  EXPECT_GE(json_int(stats, "serve.accept_failures"), 1);

  // serve_client_disconnect: the daemon force-closes the connection after
  // handling one request; the next request transparently reconnects.
  FaultInjector::global().arm(
      {"serve_client_disconnect", /*hit=*/1, /*count=*/1});
  ASSERT_TRUE(client.stats_json(stats).ok());  // handled, then disconnected
  ASSERT_TRUE(client.stats_json(stats).ok()) << "reconnect must be transparent";

  // The daemon itself never went down: jobs still run end to end.
  SubmitReply reply;
  ASSERT_TRUE(client.submit(noop_spec("survivor"), reply).ok());
  ASSERT_TRUE(reply.accepted);
  JobStatus status;
  ASSERT_TRUE(client.wait(reply.job_id, status, 20.0).ok());
  EXPECT_EQ(status.state, JobState::kDone);
}

TEST_F(DaemonTest, GracefulDrainShedsQueuedStopsRunningExitsZero) {
  ServeConfig cfg;
  cfg.workers = 1;
  start_daemon(cfg);
  ServeClient client;
  ASSERT_TRUE(client.connect(socket_path_).ok());

  SubmitReply running;
  ASSERT_TRUE(client.submit(noop_spec("s", 10.0), running).ok());
  SubmitReply queued;
  ASSERT_TRUE(client.submit(noop_spec("s"), queued).ok());
  ASSERT_TRUE(running.accepted && queued.accepted);

  // shutdown == SIGTERM: running children stop at a safe point, queued work
  // is shed (reported, never silent), exit code 0 for a clean drain. The
  // final queue invariant (assert_no_silent_jobs) runs inside the daemon.
  ASSERT_TRUE(client.shutdown().ok());
  if (thread_.joinable()) thread_.join();
  EXPECT_EQ(exit_code_, 0);
  daemon_.reset();
}

}  // namespace
}  // namespace serve
}  // namespace rlccd

#endif  // !_WIN32
