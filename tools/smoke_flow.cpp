// Developer smoke test: generates a block, runs the default flow and two
// naive prioritization strategies, prints summaries. Not installed; used to
// calibrate the substrate while developing.
//
//   smoke_flow [block] [scale] [trials] [--metrics-json PATH]
//              [--metrics-csv PATH] [--trace-json PATH] [--progress]
//
// --metrics-json / --metrics-csv write the process-wide telemetry registry
// (counters, histograms, nested per-pass span trees) after all runs;
// --trace-json records a Chrome-trace timeline of every span.
#include <cstdio>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/progress.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "designgen/blocks.h"
#include "designgen/generator.h"
#include "opt/flow.h"

using namespace rlccd;

int main(int argc, char** argv) {
  set_log_level(LogLevel::Info);
  std::string metrics_json;
  std::string metrics_csv;
  std::string trace_json;
  bool progress = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics-json" && i + 1 < argc) {
      metrics_json = argv[++i];
    } else if (arg == "--metrics-csv" && i + 1 < argc) {
      metrics_csv = argv[++i];
    } else if (arg == "--trace-json" && i + 1 < argc) {
      trace_json = argv[++i];
    } else if (arg == "--progress") {
      progress = true;
    } else {
      positional.push_back(arg);
    }
  }
  std::string block_name = !positional.empty() ? positional[0] : "block11";
  double scale =
      positional.size() > 1 ? std::atof(positional[1].c_str()) : 0.01;
  if (!trace_json.empty()) TraceRecorder::global().enable();

  Design design = generate_design(
      to_generator_config(find_block(block_name), scale));
  Netlist& nl = *design.netlist;
  std::printf("design %s: %zu cells, period %.3f ns, die %.0f um\n",
              design.name.c_str(), nl.num_real_cells(), design.clock_period,
              design.die.width);

  Sta sta0 = design.make_sta();
  sta0.run();
  TimingSummary begin = sta0.summary();
  std::printf("begin: WNS %.3f TNS %.2f NVE %zu / %zu endpoints\n",
              begin.wns, begin.tns, begin.nve, begin.num_endpoints);

  StderrProgress progress_observer("  ");
  FlowConfig cfg = default_flow_config(nl.num_real_cells(),
                                       design.clock_period);
  if (progress) cfg.observer = &progress_observer;
  auto run_with = [&](const char* tag, std::span<const PinId> prio) {
    Netlist work = nl;  // pristine copy per run
    FlowInput input{design.sta_config, design.clock_period, design.die,
                    design.pi_toggles, prio};
    FlowResult r = run_placement_flow(work, input, cfg);
    std::printf(
        "%-12s final WNS %.3f TNS %8.2f NVE %4zu | after_skew TNS %8.2f | "
        "power %.2f->%.2f mW | up %d dn %d buf %d swap %d | %.2fs\n",
        tag, r.final_summary.wns, r.final_summary.tns, r.final_summary.nve,
        r.after_skew.tns, r.power_begin.total(), r.power_final.total(),
        r.cells_upsized, r.cells_downsized, r.buffers_inserted,
        r.pins_swapped, r.runtime_sec());
    return r;
  };

  run_with("default", {});

  // Worst-slack-k prioritization.
  std::vector<PinId> vio = sta0.endpoint_violations();
  std::sort(vio.begin(), vio.end(), [&](PinId a, PinId b) {
    return sta0.endpoint_slack(a) < sta0.endpoint_slack(b);
  });
  std::vector<PinId> worst(vio.begin(),
                           vio.begin() + std::min<std::size_t>(vio.size(),
                                                               vio.size() / 3));
  run_with("worst-k", worst);

  // Random-k prioritization.
  Rng rng(7);
  std::vector<PinId> shuffled = vio;
  rng.shuffle(shuffled);
  std::vector<PinId> randk(
      shuffled.begin(),
      shuffled.begin() + std::min<std::size_t>(shuffled.size(),
                                               shuffled.size() / 3));
  run_with("random-k", randk);

  // All violating endpoints.
  run_with("all-vio", vio);

  // Random search: does a good selection exist at all?
  int trials = positional.size() > 2 ? std::atoi(positional[2].c_str()) : 0;
  double best_tns = -1e30;
  std::vector<PinId> best_sel;
  for (int i = 0; i < trials; ++i) {
    std::vector<PinId> sel;
    double keep = rng.uniform(0.05, 0.6);
    for (PinId ep : vio) {
      if (rng.uniform() < keep) sel.push_back(ep);
    }
    Netlist work = nl;
    FlowInput input{design.sta_config, design.clock_period, design.die,
                    design.pi_toggles, sel};
    FlowResult r = run_placement_flow(work, input, cfg);
    if (r.final_summary.tns > best_tns) {
      best_tns = r.final_summary.tns;
      best_sel = sel;
      std::printf("  trial %3d: TNS %8.3f (|sel|=%zu) <-- new best\n", i,
                  r.final_summary.tns, sel.size());
    }
  }

  if (!metrics_json.empty()) {
    if (!MetricsRegistry::global().write_json(metrics_json)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_json.c_str());
      return 1;
    }
    std::printf("telemetry written to %s\n", metrics_json.c_str());
  }
  if (!metrics_csv.empty()) {
    if (!MetricsRegistry::global().write_csv(metrics_csv)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_csv.c_str());
      return 1;
    }
    std::printf("telemetry written to %s\n", metrics_csv.c_str());
  }
  if (!trace_json.empty()) {
    TraceRecorder& rec = TraceRecorder::global();
    rec.disable();
    if (!rec.write_chrome_json(trace_json)) {
      std::fprintf(stderr, "cannot write %s\n", trace_json.c_str());
      return 1;
    }
    std::printf("trace written to %s (%llu events, %llu dropped)\n",
                trace_json.c_str(),
                static_cast<unsigned long long>(rec.buffered_events()),
                static_cast<unsigned long long>(rec.dropped_events()));
  }
  return 0;
}
