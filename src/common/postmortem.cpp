#include "common/postmortem.h"

#include <algorithm>
#include <chrono>

#include "common/io.h"
#include "common/json_writer.h"

namespace rlccd {

namespace postmortem_detail {
std::atomic<bool> g_ring_enabled{false};
}  // namespace postmortem_detail

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void event_to_json(std::string& out, const PostmortemEvent& ev) {
  out += "{\"seq\":";
  append_json_number(out, ev.seq);
  out += ",\"t_sec\":";
  append_json_number(out, ev.t_sec);
  out += ",\"kind\":\"";
  json_escape(out, ev.kind);
  out += "\",\"text\":\"";
  json_escape(out, ev.text);
  out += "\"}";
}

}  // namespace

EventRing& EventRing::global() {
  static EventRing ring;
  return ring;
}

void EventRing::enable(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<std::size_t>(capacity, 8);
  ring_.clear();
  ring_.resize(capacity_);
  postmortem_detail::g_ring_enabled.store(true, std::memory_order_release);
}

void EventRing::disable() {
  postmortem_detail::g_ring_enabled.store(false, std::memory_order_release);
}

void EventRing::note(std::string_view kind, std::string_view text) {
  if (!enabled()) return;
  const double now = steady_seconds();
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) return;  // disabled raced with enable(); nothing to do
  PostmortemEvent& slot = ring_[(next_seq_ - 1) % capacity_];
  slot.seq = next_seq_++;
  slot.t_sec = now;
  slot.kind.assign(kind);
  slot.text.assign(text);
}

std::uint64_t EventRing::collect_since(std::uint64_t after_seq,
                                       std::vector<PostmortemEvent>& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (next_seq_ == 1) return after_seq;
  const std::uint64_t newest = next_seq_ - 1;
  std::uint64_t first = after_seq + 1;
  if (newest >= capacity_ && first < newest - capacity_ + 1) {
    first = newest - capacity_ + 1;  // older events lost to wrap-around
  }
  for (std::uint64_t s = first; s <= newest; ++s) {
    out.push_back(ring_[(s - 1) % capacity_]);
  }
  return newest;
}

std::vector<PostmortemEvent> EventRing::events() const {
  std::vector<PostmortemEvent> out;
  collect_since(0, out);
  return out;
}

std::string PostmortemReport::to_json() const {
  std::string out = "{\"job\":\"";
  json_escape(out, job);
  out += "\",\"attempt\":";
  append_json_number(out, static_cast<std::uint64_t>(attempt));
  out += ",\"pid\":";
  append_json_number(out, static_cast<std::uint64_t>(pid));
  out += ",\"classification\":\"";
  json_escape(out, classification);
  out += "\",\"exit_code\":";
  append_json_number(out, static_cast<double>(exit_code));
  out += ",\"term_signal\":";
  append_json_number(out, static_cast<double>(term_signal));
  out += ",\"wall_sec\":";
  append_json_number(out, wall_sec);
  out += ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i) out += ',';
    event_to_json(out, events[i]);
  }
  out += "]}";
  return out;
}

Status write_postmortem_json(const std::string& path,
                             const PostmortemReport& report) {
  std::string json = report.to_json();
  json += '\n';
  return atomic_write_file(path, json);
}

}  // namespace rlccd
