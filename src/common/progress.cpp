#include "common/progress.h"

#include <cstdio>

namespace rlccd {

std::string format_progress_line(const ProgressEvent& event) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf, "[%.*s] %-16.*s",
                static_cast<int>(event.phase.size()), event.phase.data(),
                static_cast<int>(event.step.size()), event.step.data());
  out += buf;
  if (event.index >= 0) {
    std::snprintf(buf, sizeof buf, " #%d", event.index);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, " %.3fs", event.seconds);
  out += buf;
  for (const ProgressMetric& m : event.metrics) {
    std::snprintf(buf, sizeof buf, " %.*s=%.3f",
                  static_cast<int>(m.name.size()), m.name.data(), m.value);
    out += buf;
  }
  return out;
}

void StderrProgress::on_event(const ProgressEvent& event) {
  std::FILE* stream = stream_ != nullptr ? stream_ : stderr;
  std::string line = format_progress_line(event);
  std::fprintf(stream, "%s%s\n", prefix_.c_str(), line.c_str());
}

}  // namespace rlccd
