# Empty compiler generated dependencies file for rlccd_power.
# This may be replaced when dependencies are built.
