#include "rl/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>

#include "common/fault.h"
#include "common/finite.h"
#include "common/log.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "nn/serialize.h"
#include "rl/checkpoint.h"
#include "rl/flow_cache.h"
#include "rl/isolation/supervisor.h"
#include "rl/isolation/wire.h"

namespace rlccd {

ReinforceTrainer::ReinforceTrainer(const Design* design, Policy* policy,
                                   TrainConfig config)
    : design_(design),
      policy_(policy),
      config_(config),
      graph_(*design),
      cache_(config_.flow_cache_mb > 0
                 ? std::make_unique<FlowOutcomeCache>(config_.flow_cache_mb)
                 : nullptr),
      evaluator_(design, config_.flow, cache_.get()) {
  RLCCD_EXPECTS(design != nullptr && policy != nullptr);
  RLCCD_EXPECTS(config.workers >= 1);
  RLCCD_EXPECTS(config.checkpoint_every >= 1);
  RLCCD_EXPECTS(config.rollback_after >= 1);
  // With isolated workers the reward flows run inside forked children:
  // a flow observer would fire against copy-on-write state and a parent
  // cancel token cannot see the child's clock (see FlowConfig docs).
  RLCCD_DEBUG_ASSERT(!config_.isolate_workers ||
                     (config_.flow.observer == nullptr &&
                      config_.flow.cancel == nullptr));
}

ReinforceTrainer::~ReinforceTrainer() = default;

FlowResult ReinforceTrainer::evaluate_selection(
    std::span<const PinId> selection) const {
  return evaluate_selection(selection, nullptr);
}

FlowResult ReinforceTrainer::evaluate_selection(
    std::span<const PinId> selection, const CancelToken* cancel) const {
  return evaluator_.evaluate_full(selection, cancel);
}

TrainStats ReinforceTrainer::train() {
  RLCCD_SPAN("train");
  auto t_start = std::chrono::steady_clock::now();
  TrainStats stats;
  stats.begin_tns = graph_.begin_tns();

  static MetricsHistogram& hist_iter_seconds =
      MetricsRegistry::global().histogram("train.iteration.seconds");
  MetricsRegistry& reg = MetricsRegistry::global();
  static MetricsCounter& ctr_ckpt_written =
      reg.counter("train.checkpoints_written");
  static MetricsCounter& ctr_ckpt_failed =
      reg.counter("train.checkpoint_failures");
  static MetricsCounter& ctr_resumes = reg.counter("train.resumes");
  static MetricsCounter& ctr_poisoned =
      reg.counter("train.trajectories_poisoned");
  static MetricsCounter& ctr_cancelled =
      reg.counter("train.rollouts_cancelled");
  static MetricsCounter& ctr_iter_failed =
      reg.counter("train.iterations_failed");
  static MetricsCounter& ctr_rollbacks = reg.counter("train.rollbacks");
  static MetricsCounter& ctr_ckpt_skipped =
      reg.counter("train.checkpoints_skipped");
  static MetricsCounter& ctr_workers_lost = reg.counter("train.workers_lost");
  static MetricsCounter& ctr_iter_degraded =
      reg.counter("train.iterations_degraded");
  static MetricsCounter& ctr_train_cancelled =
      reg.counter("train.cancelled");

  Adam optimizer(policy_->parameters(), config_.lr);
  Rng root_rng(config_.seed ^ 0xABCDEF12345ull);
  double baseline = 0.0;
  bool baseline_init = false;
  int stall = 0;
  int start_iter = 0;

  // Snapshots the full training state; `next_iter` is the first iteration a
  // resumed (or rolled-back) loop would run.
  auto capture = [&](int next_iter) {
    TrainCheckpoint ckpt;
    ckpt.seed = config_.seed;
    ckpt.workers = config_.workers;
    ckpt.next_iter = next_iter;
    ckpt.baseline = baseline;
    ckpt.baseline_init = baseline_init;
    ckpt.stall = stall;
    ckpt.rng_state = root_rng.state();
    std::vector<Tensor> params = policy_->parameters();
    ckpt.params.reserve(params.size());
    ckpt.param_shapes.reserve(params.size());
    for (const Tensor& p : params) {
      ckpt.params.emplace_back(p.data(), p.data() + p.size());
      ckpt.param_shapes.emplace_back(p.rows(), p.cols());
    }
    ckpt.adam = optimizer.export_state();
    ckpt.stats = stats;
    return ckpt;
  };

  // Restores policy parameters, optimizer moments and loop state (but not
  // TrainStats) from a snapshot with already-validated shapes.
  auto restore_policy_state = [&](const TrainCheckpoint& ckpt) -> Status {
    std::vector<Tensor> params = policy_->parameters();
    for (std::size_t i = 0; i < params.size(); ++i) {
      std::memcpy(params[i].data(), ckpt.params[i].data(),
                  ckpt.params[i].size() * sizeof(float));
    }
    RLCCD_TRY(optimizer.import_state(ckpt.adam));
    root_rng.set_state(ckpt.rng_state);
    baseline = ckpt.baseline;
    baseline_init = ckpt.baseline_init;
    stall = ckpt.stall;
    return Status();
  };

  // Full resume: fingerprint + shape validation, then state + TrainStats.
  auto restore_checkpoint = [&](const TrainCheckpoint& ckpt) -> Status {
    if (ckpt.seed != config_.seed ||
        ckpt.workers != config_.workers) {
      return Status::failed_precondition(
          "checkpoint was trained with seed %llu / %d workers; config has "
          "seed %llu / %d workers",
          static_cast<unsigned long long>(ckpt.seed), ckpt.workers,
          static_cast<unsigned long long>(config_.seed), config_.workers);
    }
    std::vector<Tensor> params = policy_->parameters();
    if (ckpt.params.size() != params.size()) {
      return Status::invalid_argument("checkpoint has %zu parameters, "
                                      "policy has %zu",
                                      ckpt.params.size(), params.size());
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (ckpt.param_shapes[i].first != params[i].rows() ||
          ckpt.param_shapes[i].second != params[i].cols()) {
        return Status::invalid_argument(
            "checkpoint parameter %zu: shape %llux%llu, expected %zux%zu", i,
            static_cast<unsigned long long>(ckpt.param_shapes[i].first),
            static_cast<unsigned long long>(ckpt.param_shapes[i].second),
            params[i].rows(), params[i].cols());
      }
    }
    RLCCD_TRY(restore_policy_state(ckpt));
    stats = ckpt.stats;
    start_iter = ckpt.next_iter;
    return Status();
  };

  bool resumed = false;
  if (config_.resume && !config_.checkpoint_dir.empty()) {
    std::vector<std::string> paths;
    Status listed = list_checkpoints(config_.checkpoint_dir, paths);
    if (!listed.ok()) {
      RLCCD_LOG_INFO("resume requested but %s; starting fresh",
                     listed.to_string().c_str());
    }
    // Newest first; a corrupt or incompatible file falls back to the next.
    for (const std::string& path : paths) {
      TrainCheckpoint ckpt;
      Status s = load_checkpoint(ckpt, path);
      if (s.ok()) s = restore_checkpoint(ckpt);
      if (!s.ok()) {
        ctr_ckpt_skipped.increment();
        RLCCD_LOG_WARN("skipping checkpoint %s: %s", path.c_str(),
                       s.to_string().c_str());
        continue;
      }
      resumed = true;
      ctr_resumes.increment();
      RLCCD_LOG_INFO("resumed from %s (iteration %d, best TNS %.3f)",
                     path.c_str(), start_iter, stats.best_tns);
      break;
    }
  }

  if (!resumed) {
    FlowResult default_result = evaluate_selection({});
    stats.default_tns = default_result.final_summary.tns;
    stats.default_nve = default_result.final_summary.nve;
    stats.best_tns = stats.default_tns;  // empty selection is always available
  }

  if (graph_.num_endpoints() == 0) {
    RLCCD_LOG_INFO("no violating endpoints; nothing to train");
    return stats;
  }

  const double reward_denom =
      std::max({std::abs(stats.default_tns), 0.02 * std::abs(stats.begin_tns),
                1e-3});
  // From here on every reward evaluation — worker rollouts and the final
  // greedy decode — goes through the memoizing evaluator with this
  // normalization (rewards are recomputed on cache hits, never stored).
  evaluator_.set_reward_transform(stats.default_tns, reward_denom);

  struct WorkerOut {
    EvalOutcome outcome;   // reward evaluation (fresh or memoized)
    int steps = 0;
    bool poisoned = false;  // non-finite logits/TNS/reward/gradients
    bool crashed = false;   // isolated worker lost (restarts exhausted)
    std::vector<PinId> selection;
    std::vector<std::vector<float>> grads;  // per parameter
    SelectionAudit audit;                   // decision provenance
  };

  bool use_isolation = config_.isolate_workers;
  if (use_isolation && !RolloutSupervisor::supported()) {
    RLCCD_LOG_WARN(
        "isolate_workers requested but process isolation is unsupported on "
        "this platform; using the thread backend");
    use_isolation = false;
  }

  // Last known-good state for in-memory rollback after repeated dropped
  // iterations; refreshed after every successful parameter update.
  TrainCheckpoint last_good = capture(start_iter);
  int consecutive_failures = 0;

  bool run_cancelled = false;
  for (int iter = start_iter; iter < config_.max_iterations; ++iter) {
    // Cooperative stop (serve drain, Ctrl-C hosts): everything completed so
    // far is checkpointed, so stopping here keeps the run resumable.
    if (config_.cancel != nullptr && config_.cancel->expired()) {
      run_cancelled = true;
      ctr_train_cancelled.increment();
      RLCCD_TRACE_INSTANT("train.cancelled");
      RLCCD_LOG_INFO(
          "training cancelled at iteration boundary %d (%d completed)", iter,
          stats.iterations);
      break;
    }
    // Early-stop check at the iteration boundary, so an interrupted run
    // resumed from a checkpoint stops at exactly the same iteration as an
    // uninterrupted one.
    if (iter >= config_.min_iterations && stall >= config_.patience) {
      RLCCD_LOG_INFO("early stop: no improvement in %d iterations", stall);
      break;
    }
    const auto t_iter = std::chrono::steady_clock::now();
    ScopedSpan iter_span("iteration");
    // Age the flow cache once per iteration: entries last touched several
    // iterations ago lose replacement fights against the current policy's
    // sampling distribution.
    if (cache_ != nullptr) cache_->new_generation();
    // Clone policies on the main thread (cheap, deterministic).
    std::vector<Policy> clones;
    clones.reserve(static_cast<std::size_t>(config_.workers));
    for (int w = 0; w < config_.workers; ++w) clones.push_back(policy_->clone());

    std::vector<WorkerOut> outs(static_cast<std::size_t>(config_.workers));

    // Phase A (batched mode only): one lock-step batched decode for every
    // worker on this thread. Forking the root RNG is pure (it never mutates
    // the root state), so the per-worker streams are the exact streams the
    // per-worker path forks inside its threads, and checkpoints carry the
    // same root RNG state either way.
    std::vector<Policy::RolloutResult> ros;
    if (config_.batched_inference && !use_isolation) {
      RLCCD_SPAN("rollout_batched");
      std::vector<SelectionEnv> envs;
      std::vector<Rng> rngs;
      std::vector<SelectionAudit*> audits;
      envs.reserve(static_cast<std::size_t>(config_.workers));
      rngs.reserve(static_cast<std::size_t>(config_.workers));
      audits.reserve(static_cast<std::size_t>(config_.workers));
      for (int w = 0; w < config_.workers; ++w) {
        envs.emplace_back(&graph_, config_.overlap_threshold);
        rngs.push_back(root_rng.fork(static_cast<std::uint64_t>(iter) * 131 +
                                     static_cast<std::uint64_t>(w)));
        audits.push_back(&outs[static_cast<std::size_t>(w)].audit);
      }
      ros = policy_->rollout_batched(graph_, envs, rngs, audits);
    }

    // Rollout body shared by both backends: decode (or adopt the batched
    // phase-A result), run the reward flow, scale this clone's gradients.
    // Runs on a worker thread, or — isolated — inside a forked child.
    auto rollout_body = [&](int w, Policy& pol, WorkerOut& out,
                            const CancelToken* watchdog,
                            Policy::RolloutResult* pre) {
      Policy::RolloutResult ro;
      if (pre != nullptr) {
        ro = std::move(*pre);
      } else {
        Rng rng = root_rng.fork(static_cast<std::uint64_t>(iter) * 131 +
                                static_cast<std::uint64_t>(w));
        SelectionEnv env(&graph_, config_.overlap_threshold);
        // Stepwise rollout: sum_t grad(log pi_t) lands in the clone's
        // parameter grads (zero on entry) with per-step graphs freed.
        ro = pol.rollout(graph_, env, rng, /*greedy=*/false,
                         Policy::RolloutMode::StepwiseBackward, &out.audit);
      }
      out.steps = ro.steps;
      out.selection = ro.selected;
      if (ro.poisoned) {
        out.poisoned = true;
        ctr_poisoned.increment();
        RLCCD_TRACE_INSTANT("train.trajectory_poisoned");
        RLCCD_LOG_WARN("worker %d: non-finite logits; trajectory dropped", w);
        return;
      }
      out.outcome = evaluator_.evaluate({ro.selected, watchdog});
      if (out.outcome.cancelled) {
        ctr_cancelled.increment();
        RLCCD_TRACE_INSTANT("train.rollout_cancelled");
        RLCCD_LOG_WARN(
            "worker %d: rollout exceeded %.1fs deadline; cancelled", w,
            config_.rollout_deadline_sec);
        return;
      }
      if (fault_fire("nan_reward")) {
        out.outcome.summary.tns = std::numeric_limits<double>::quiet_NaN();
        out.outcome.reward = std::numeric_limits<double>::quiet_NaN();
      }
      if (!std::isfinite(out.outcome.summary.tns) ||
          !std::isfinite(out.outcome.reward)) {
        out.poisoned = true;
        ctr_poisoned.increment();
        RLCCD_LOG_WARN(
            "worker %d: non-finite reward (TNS %g); trajectory dropped", w,
            out.outcome.summary.tns);
        return;
      }

      // Phase C (batched mode only): teacher-forced StepwiseBackward
      // replay of the decoded trajectory on this worker's clone. The
      // replay runs the identical op sequence with the identical inputs
      // (same clone parameters, same env transitions, forced actions), so
      // it accumulates bit-identical sum_t grad(log pi_t) to a live
      // per-worker stepwise rollout — without holding any graph across the
      // batched decode.
      if (pre != nullptr) {
        SelectionEnv replay_env(&graph_, config_.overlap_threshold);
        Rng replay_rng(0);  // never drawn from in forced mode
        Policy::RolloutResult replay = pol.rollout(
            graph_, replay_env, replay_rng, /*greedy=*/false,
            Policy::RolloutMode::StepwiseBackward, /*audit=*/nullptr,
            &ro.actions);
        RLCCD_ASSERT(!replay.poisoned && replay.steps == ro.steps);
      }

      // REINFORCE: grad = -(r - b) * sum_t grad(log pi_t); the baseline
      // is read once before the workers launch.
      const float scale = static_cast<float>(-(out.outcome.reward - baseline));
      std::vector<Tensor> params = pol.parameters();
      out.grads.reserve(params.size());
      bool grads_finite = true;
      for (Tensor& p : params) {
        std::vector<float> g = p.grad();
        for (float& v : g) v *= scale;
        if (!all_finite(g)) grads_finite = false;
        out.grads.push_back(std::move(g));
      }
      if (!grads_finite) {
        out.poisoned = true;
        ctr_poisoned.increment();
        out.grads.clear();
        RLCCD_LOG_WARN(
            "worker %d: non-finite gradients; trajectory dropped", w);
      }
    };

    int n_crashed = 0;
    if (use_isolation) {
      // Process backend: fork one supervised child per worker. Decoding is
      // per-worker inside the child (phase A is skipped; the batched and
      // per-worker decodes are pinned bit-identical by the equivalence
      // tests), and the supervisor's SIGKILL deadline supersedes the
      // cooperative watchdog, so the child runs its flow uncancellable.
      SupervisorConfig scfg;
      scfg.workers = config_.workers;
      scfg.deadline_sec = config_.rollout_deadline_sec;
      scfg.heartbeat_interval_sec = config_.worker_heartbeat_sec;
      scfg.heartbeat_timeout_sec = config_.worker_heartbeat_timeout_sec;
      scfg.max_restarts = config_.max_worker_restarts;
      scfg.backoff_base_sec = config_.worker_backoff_sec;
      scfg.backoff_seed =
          config_.seed ^ (static_cast<std::uint64_t>(iter) * 0x9E37ull);
      RolloutSupervisor supervisor(scfg);
      std::vector<WorkerOutcome> outcomes =
          supervisor.run([&](int w) -> std::string {
            // Child process: everything here touches the forked child's
            // copy-on-write view of the trainer; the only output is the
            // returned wire payload. The scope captures the counters and
            // spans the rollout records (they die with the child otherwise)
            // so the parent can re-apply them.
            TelemetryScope scope;
            WorkerOut out;
            {
              RLCCD_SPAN("rollout");
              // Deterministic stall fault: parks the worker past its
              // deadline (here: until the supervisor kills it).
              fault_stall_point("rollout_stall");
              rollout_body(w, clones[static_cast<std::size_t>(w)], out,
                           /*watchdog=*/nullptr, /*pre=*/nullptr);
            }
            RolloutWire wire;
            wire.outcome = out.outcome;
            wire.steps = out.steps;
            wire.poisoned = out.poisoned;
            wire.selection = std::move(out.selection);
            wire.grads = std::move(out.grads);
            wire.audit = std::move(out.audit);
            wire.telemetry = scope.snapshot();
            std::string payload;
            encode_rollout_wire(wire, payload);
            return payload;
          });
      for (int w = 0; w < config_.workers; ++w) {
        WorkerOut& out = outs[static_cast<std::size_t>(w)];
        WorkerOutcome& oc = outcomes[static_cast<std::size_t>(w)];
        RolloutWire wire;
        Status ds =
            oc.completed
                ? decode_rollout_wire(oc.payload, wire)
                : Status::io_error("worker process lost after %d attempts "
                                   "(last failure: %s)",
                                   oc.attempts,
                                   worker_failure_name(oc.last_failure));
        if (!ds.ok()) {
          out.crashed = true;
          ++n_crashed;
          ctr_workers_lost.increment();
          RLCCD_TRACE_INSTANT("train.worker_lost");
          RLCCD_LOG_WARN("worker %d: %s; trajectory dropped", w,
                         ds.to_string().c_str());
          continue;
        }
        out.outcome = wire.outcome;
        out.steps = wire.steps;
        out.poisoned = wire.poisoned;
        out.selection = std::move(wire.selection);
        out.grads = std::move(wire.grads);
        out.audit = std::move(wire.audit);
        // Adopt the child's fresh flow outcome into the parent's cache: the
        // child's own insert went into its copy-on-write image and died
        // with the process. Hits need no re-insert (the entry predates the
        // fork by construction), and cancelled or poisoned outcomes never
        // enter the cache.
        if (cache_ != nullptr && out.outcome.flow_ran &&
            !out.outcome.cache_hit && !out.outcome.cancelled &&
            !out.poisoned) {
          // count_global=false: the child's insert delta is already in
          // wire.telemetry, applied below.
          cache_->insert(out.outcome.state_hash, out.outcome,
                         /*count_global=*/false);
        }
        // Re-apply what the child's rollout recorded, so global counters,
        // histograms and span trees agree with the thread backend.
        reg.merge_delta(wire.telemetry);
      }
      if (n_crashed > 0) {
        ctr_iter_degraded.increment();
        RLCCD_TRACE_INSTANT("train.iteration_degraded");
        RLCCD_LOG_WARN(
            "iter %2d degraded: %d of %d workers lost their process", iter,
            n_crashed, config_.workers);
      }
    } else {
      std::vector<std::thread> threads;
      for (int w = 0; w < config_.workers; ++w) {
        threads.emplace_back([&, w]() {
          // Per-worker span: each worker thread owns its own span tree, so
          // eight concurrent rollouts aggregate without contention.
          RLCCD_SPAN("rollout");
          // Watchdog: the flow polls this token at pass boundaries, so a
          // stuck rollout cancels instead of wedging the whole iteration.
          CancelToken watchdog(config_.rollout_deadline_sec);
          // Deterministic stall fault: parks the worker past its deadline.
          fault_stall_point("rollout_stall");
          rollout_body(w, clones[static_cast<std::size_t>(w)],
                       outs[static_cast<std::size_t>(w)], &watchdog,
                       config_.batched_inference
                           ? &ros[static_cast<std::size_t>(w)]
                           : nullptr);
        });
      }
      for (std::thread& t : threads) t.join();
    }

    // Provenance: one rollout record per worker, in worker order, on this
    // thread (sinks need no locking).
    if (config_.audit != nullptr) {
      for (int w = 0; w < config_.workers; ++w) {
        const WorkerOut& out = outs[static_cast<std::size_t>(w)];
        RolloutAuditRecord rec;
        rec.iteration = iter;
        rec.worker = w;
        rec.tns = out.outcome.summary.tns;
        rec.reward = out.outcome.reward;
        rec.flow_ran = out.outcome.flow_ran;
        rec.poisoned = out.poisoned;
        rec.cancelled = out.outcome.cancelled;
        rec.crashed = out.crashed;
        rec.state_hash = out.outcome.state_hash;
        rec.cache_hit = out.outcome.cache_hit;
        rec.audit = &out.audit;
        config_.audit->on_rollout(rec);
      }
    }

    int survivors = 0;
    int n_poisoned = 0;
    int n_cancelled = 0;
    for (const WorkerOut& out : outs) {
      // Memoized evaluations count as flow runs: the cache returns exactly
      // what the run would have produced, so TrainStats stays identical
      // with the cache on or off.
      if (out.outcome.flow_ran) ++stats.flow_runs;
      if (out.poisoned) ++n_poisoned;
      if (out.outcome.cancelled) ++n_cancelled;
      if (!out.poisoned && !out.outcome.cancelled && !out.crashed) ++survivors;
    }

    const double iter_seconds_so_far =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_iter)
            .count();
    if (survivors == 0) {
      // Every trajectory failed: drop the iteration (no parameter update,
      // no history entry) and, after repeated failures, roll the policy and
      // optimizer back to the last known-good state.
      ++consecutive_failures;
      ctr_iter_failed.increment();
      RLCCD_TRACE_INSTANT("train.iteration_dropped");
      bool rolled_back = false;
      if (consecutive_failures >= config_.rollback_after) {
        Status rs = restore_policy_state(last_good);
        if (rs.ok()) {
          rolled_back = true;
          consecutive_failures = 0;
          ctr_rollbacks.increment();
          RLCCD_TRACE_INSTANT("train.rollback");
          RLCCD_LOG_WARN(
              "iter %2d: rolled back to last good state (iteration %d)", iter,
              last_good.next_iter);
        } else {
          RLCCD_LOG_ERROR("rollback failed: %s", rs.to_string().c_str());
        }
      }
      RLCCD_LOG_WARN(
          "iter %2d dropped: 0 of %d trajectories survived (%d poisoned, %d "
          "cancelled, %d crashed)",
          iter, config_.workers, n_poisoned, n_cancelled, n_crashed);
      if (config_.observer != nullptr) {
        const ProgressMetric metrics[] = {
            {"poisoned", static_cast<double>(n_poisoned)},
            {"cancelled", static_cast<double>(n_cancelled)},
            {"crashed", static_cast<double>(n_crashed)},
            {"consecutive_failures", static_cast<double>(consecutive_failures)},
            {"rolled_back", rolled_back ? 1.0 : 0.0},
        };
        ProgressEvent event;
        event.phase = "train";
        event.step = "recovery";
        event.index = iter;
        event.seconds = iter_seconds_so_far;
        event.metrics = metrics;
        config_.observer->on_event(event);
      }
      if (config_.audit != nullptr) {
        IterationAuditRecord rec;
        rec.iteration = iter;
        rec.survivors = 0;
        rec.poisoned = n_poisoned;
        rec.cancelled = n_cancelled;
        rec.crashed = n_crashed;
        rec.baseline = baseline;
        config_.audit->on_iteration(rec);
      }
      continue;
    }
    consecutive_failures = 0;

    // Merge surviving gradients into the master policy (fixed order =>
    // deterministic). With no failures this is the plain 1/workers mean.
    optimizer.zero_grad();
    std::vector<Tensor> master = policy_->parameters();
    const float inv_w = 1.0f / static_cast<float>(survivors);
    for (const WorkerOut& out : outs) {
      if (out.poisoned || out.outcome.cancelled || out.crashed) continue;
      for (std::size_t p = 0; p < master.size(); ++p) {
        std::vector<float>& g = master[p].grad_mut();
        const std::vector<float>& src = out.grads[p];
        for (std::size_t i = 0; i < g.size(); ++i) g[i] += src[i] * inv_w;
      }
    }
    const double grad_norm = clip_grad_norm(master, config_.grad_clip);
    optimizer.step();

    // Iteration bookkeeping over the surviving trajectories.
    IterationStats is;
    double iter_best = -1e300;
    for (const WorkerOut& out : outs) {
      if (out.poisoned || out.outcome.cancelled || out.crashed) continue;
      const double tns = out.outcome.summary.tns;
      is.mean_reward += out.outcome.reward;
      is.mean_tns += tns;
      is.mean_steps += out.steps;
      is.mean_entropy += out.audit.mean_entropy();
      if (tns > iter_best) iter_best = tns;
      if (tns > stats.best_tns) {
        stats.best_tns = tns;
        stats.best_selection = out.selection;
        stall = -1;  // improvement this iteration
      }
    }
    const double n = static_cast<double>(survivors);
    is.mean_reward /= n;
    is.mean_tns /= n;
    is.mean_steps /= n;
    is.mean_entropy /= n;
    is.iter_best_tns = iter_best;
    is.best_tns = stats.best_tns;
    is.grad_norm = grad_norm;
    is.baseline = baseline;  // the value this iteration's advantage used
    stats.history.push_back(is);
    ++stats.iterations;

    if (config_.audit != nullptr) {
      IterationAuditRecord rec;
      rec.iteration = iter;
      rec.survivors = survivors;
      rec.poisoned = n_poisoned;
      rec.cancelled = n_cancelled;
      rec.crashed = n_crashed;
      rec.mean_reward = is.mean_reward;
      rec.mean_tns = is.mean_tns;
      rec.iter_best_tns = is.iter_best_tns;
      rec.best_tns = is.best_tns;
      rec.mean_steps = is.mean_steps;
      rec.mean_entropy = is.mean_entropy;
      rec.grad_norm = is.grad_norm;
      rec.baseline = is.baseline;
      config_.audit->on_iteration(rec);
    }

    const double iter_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_iter)
            .count();
    hist_iter_seconds.record(iter_seconds);
    if (config_.observer != nullptr) {
      const ProgressMetric metrics[] = {
          {"mean_reward", is.mean_reward}, {"mean_tns", is.mean_tns},
          {"iter_best_tns", is.iter_best_tns}, {"best_tns", is.best_tns},
          {"mean_steps", is.mean_steps},   {"mean_entropy", is.mean_entropy},
          {"grad_norm", is.grad_norm},
      };
      ProgressEvent event;
      event.phase = "train";
      event.step = "iteration";
      event.index = iter;
      event.seconds = iter_seconds;
      event.metrics = metrics;
      config_.observer->on_event(event);
    }

    if (!baseline_init) {
      baseline = is.mean_reward;
      baseline_init = true;
    } else {
      baseline = config_.baseline_decay * baseline +
                 (1.0 - config_.baseline_decay) * is.mean_reward;
    }

    ++stall;
    RLCCD_LOG_INFO(
        "iter %2d: mean TNS %.3f best %.3f (default %.3f) mean |sel| %.1f",
        iter, is.mean_tns, stats.best_tns, stats.default_tns, is.mean_steps);

    last_good = capture(iter + 1);
    if (!config_.checkpoint_dir.empty() &&
        stats.iterations % config_.checkpoint_every == 0) {
      const std::string path =
          checkpoint_path(config_.checkpoint_dir, stats.iterations);
      Status s = save_checkpoint(last_good, path);
      if (s.ok()) {
        ctr_ckpt_written.increment();
        RLCCD_TRACE_INSTANT("train.checkpoint_written");
        if (config_.observer != nullptr) {
          const ProgressMetric metrics[] = {
              {"iterations", static_cast<double>(stats.iterations)}};
          ProgressEvent event;
          event.phase = "train";
          event.step = "checkpoint";
          event.index = iter;
          event.seconds = 0.0;
          event.metrics = metrics;
          config_.observer->on_event(event);
        }
        // Test hook: simulate an abrupt kill right after the checkpoint
        // landed, without taking the whole test process down.
        if (fault_fire("train_crash")) {
          RLCCD_LOG_WARN("injected crash after checkpoint %s", path.c_str());
          stats.train_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t_start)
                  .count();
          return stats;
        }
      } else {
        ctr_ckpt_failed.increment();
        RLCCD_LOG_WARN("checkpoint write failed (training continues): %s",
                       s.to_string().c_str());
      }
    }
  }

  // Final greedy decode with the trained policy; keep it when it beats the
  // best sampled trajectory (pure inference, one extra reward evaluation).
  // A cancelled run skips it: the host wants the loop gone now, and a
  // resumed run will decode after its own final iteration.
  if (!run_cancelled) {
    SelectionEnv env(&graph_, config_.overlap_threshold);
    Rng rng(config_.seed ^ 0x5EEDull);
    SelectionAudit greedy_audit;
    Policy::RolloutResult ro = policy_->rollout(
        graph_, env, rng, /*greedy=*/true, Policy::RolloutMode::Inference,
        config_.audit != nullptr ? &greedy_audit : nullptr);
    // Cached evaluation: the greedy selection often repeats the best
    // sampled trajectory, in which case this costs a probe, not a flow.
    EvalOutcome geo = evaluator_.evaluate({ro.selected});
    ++stats.flow_runs;
    if (config_.audit != nullptr) {
      RolloutAuditRecord rec;  // iteration -1 marks the greedy decode
      rec.tns = geo.summary.tns;
      rec.flow_ran = true;
      rec.poisoned = ro.poisoned;
      rec.state_hash = geo.state_hash;
      rec.cache_hit = geo.cache_hit;
      rec.audit = &greedy_audit;
      config_.audit->on_rollout(rec);
    }
    if (geo.summary.tns > stats.best_tns) {
      stats.best_tns = geo.summary.tns;
      stats.best_selection = ro.selected;
      RLCCD_LOG_INFO("greedy decode improved best TNS to %.3f",
                     stats.best_tns);
    }
  }

  stats.train_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  return stats;
}

}  // namespace rlccd
