// Clock schedule: per-flop clock arrival adjustments (useful skew) plus the
// clock period. An ideal clock network is assumed — the common source
// latency cancels in single-cycle setup/hold checks, so only the per-flop
// adjustment delta matters. The useful-skew engine (src/opt/useful_skew.h)
// mutates this schedule; STA reads it.
#pragma once

#include <vector>

#include "common/contracts.h"
#include "common/ids.h"

namespace rlccd {

class ClockSchedule {
 public:
  explicit ClockSchedule(double period = 1.0) : period_(period) {}

  [[nodiscard]] double period() const { return period_; }
  void set_period(double period) {
    RLCCD_EXPECTS(period > 0.0);
    period_ = period;
  }

  // Clock arrival adjustment at a flop's CK pin (ns, signed).
  [[nodiscard]] double adjustment(CellId flop) const {
    if (flop.index() >= adjustments_.size()) return 0.0;
    return adjustments_[flop.index()];
  }

  void set_adjustment(CellId flop, double delta) {
    if (flop.index() >= adjustments_.size()) {
      adjustments_.resize(flop.index() + 1, 0.0);
    }
    adjustments_[flop.index()] = delta;
  }

  void clear() { adjustments_.clear(); }

  // All nonzero adjustments (for Fig. 5-style histograms).
  [[nodiscard]] std::vector<double> nonzero_adjustments() const {
    std::vector<double> out;
    for (double d : adjustments_) {
      if (d != 0.0) out.push_back(d);
    }
    return out;
  }

 private:
  double period_;
  std::vector<double> adjustments_;  // indexed by CellId, default 0
};

}  // namespace rlccd
