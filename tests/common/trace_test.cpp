#include "common/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "common/json.h"
#include "common/telemetry.h"

namespace rlccd {
namespace {

// Every trace test owns the global recorder for its duration: enable()
// drops anything a previous test buffered, and the test disables before
// returning so unrelated telemetry tests never record events.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { TraceRecorder::global().disable(); }
};

JsonValue parse_trace(const TraceRecorder& rec) {
  JsonValue doc;
  Status s = JsonValue::parse(rec.to_chrome_json(), doc);
  EXPECT_TRUE(s.ok()) << s.to_string();
  return doc;
}

const JsonValue* find_event(const JsonValue& doc, std::string_view name) {
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr) return nullptr;
  for (const JsonValue& e : events->array_items()) {
    if (e.string_or("name", "") == name) return &e;
  }
  return nullptr;
}

// Everything below the gate exercises the record path, which only exists
// when tracing is compiled in; the RLCCD_TRACE=OFF build keeps the
// always-valid behaviors (empty export, no-op macros) tested at the bottom.
#ifndef RLCCD_NO_TRACE

TEST_F(TraceTest, ChromeJsonIsStructurallyValid) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.enable();
  {
    RLCCD_SPAN("trace_outer");
    RLCCD_SPAN("trace_inner");
  }
  RLCCD_TRACE_INSTANT("trace_marker");
  rec.disable();

  JsonValue doc = parse_trace(rec);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.string_or("displayTimeUnit", ""), "ms");
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // Complete events: the Perfetto-required fields with sane values.
  const JsonValue* outer = find_event(doc, "trace_outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->string_or("ph", ""), "X");
  EXPECT_EQ(outer->string_or("cat", ""), "span");
  EXPECT_GE(outer->number_or("ts", -1.0), 0.0);
  EXPECT_GE(outer->number_or("dur", -1.0), 0.0);
  ASSERT_NE(outer->find("pid"), nullptr);
  ASSERT_NE(outer->find("tid"), nullptr);
  EXPECT_NE(find_event(doc, "trace_inner"), nullptr);

  // Instant events: "ph":"i" with thread scope.
  const JsonValue* marker = find_event(doc, "trace_marker");
  ASSERT_NE(marker, nullptr);
  EXPECT_EQ(marker->string_or("ph", ""), "i");
  EXPECT_EQ(marker->string_or("cat", ""), "marker");
  EXPECT_EQ(marker->string_or("s", ""), "t");
  EXPECT_EQ(marker->find("dur"), nullptr);

  // The inner span closed first, so it must not start before the outer one.
  EXPECT_GE(find_event(doc, "trace_inner")->number_or("ts", -1.0), 0.0);
}

TEST_F(TraceTest, RingDropsOldestAndCountsTheLoss) {
  TraceRecorder& rec = TraceRecorder::global();
  MetricsCounter& dropped_counter =
      MetricsRegistry::global().counter("trace.events_dropped");
  const std::uint64_t counter_before = dropped_counter.value();

  constexpr std::size_t kCapacity = 16;  // enable() clamps below this
  constexpr int kRecorded = 40;
  rec.enable(kCapacity);
  for (int i = 0; i < kRecorded; ++i) {
    RLCCD_TRACE_INSTANT(i < kRecorded - static_cast<int>(kCapacity)
                            ? "old_event"
                            : "new_event");
  }
  rec.disable();

  EXPECT_EQ(rec.buffered_events(), kCapacity);
  EXPECT_EQ(rec.dropped_events(), kRecorded - kCapacity);
  EXPECT_EQ(dropped_counter.value() - counter_before, kRecorded - kCapacity);

  // Drop-oldest: only the newest events survive the wrap.
  JsonValue doc = parse_trace(rec);
  EXPECT_EQ(find_event(doc, "old_event"), nullptr);
  ASSERT_NE(find_event(doc, "new_event"), nullptr);
  EXPECT_EQ(doc.find("traceEvents")->array_items().size(), kCapacity);
}

TEST_F(TraceTest, EnableClampsTinyCapacities) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.enable(1);
  for (int i = 0; i < 16; ++i) RLCCD_TRACE_INSTANT("tiny");
  rec.disable();
  EXPECT_EQ(rec.buffered_events(), 16u) << "minimum ring capacity is 16";
  EXPECT_EQ(rec.dropped_events(), 0u);
}

#endif  // RLCCD_NO_TRACE

TEST_F(TraceTest, DisabledRecorderBuffersNothing) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.enable();
  rec.disable();
  ASSERT_FALSE(TraceRecorder::enabled());

  RLCCD_TRACE_INSTANT("while_disabled");
  RLCCD_TRACE_COMPLETE("span_while_disabled", 0.0, 1.0);
  {
    RLCCD_SPAN("telemetry_span_while_disabled");
  }
  EXPECT_EQ(rec.buffered_events(), 0u);
  JsonValue doc = parse_trace(rec);
  EXPECT_EQ(find_event(doc, "while_disabled"), nullptr);
}

#ifndef RLCCD_NO_TRACE

TEST_F(TraceTest, ReEnableDropsPreviousBuffer) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.enable();
  RLCCD_TRACE_INSTANT("first_session");
  rec.disable();
  rec.enable();
  RLCCD_TRACE_INSTANT("second_session");
  rec.disable();

  JsonValue doc = parse_trace(rec);
  EXPECT_EQ(find_event(doc, "first_session"), nullptr);
  EXPECT_NE(find_event(doc, "second_session"), nullptr);
  EXPECT_EQ(rec.buffered_events(), 1u);
  EXPECT_EQ(rec.dropped_events(), 0u);
}

TEST_F(TraceTest, LongNamesAreTruncatedNotCorrupted) {
  const std::string long_name(3 * TraceEvent::kMaxName, 'x');
  TraceRecorder& rec = TraceRecorder::global();
  rec.enable();
  RLCCD_TRACE_INSTANT(long_name);
  rec.disable();

  JsonValue doc = parse_trace(rec);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_EQ(events->array_items().size(), 1u);
  const std::string got = events->array_items()[0].string_or("name", "");
  EXPECT_EQ(got, long_name.substr(0, TraceEvent::kMaxName));
}

TEST_F(TraceTest, WorkerThreadEventsSurviveJoin) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.enable();
  RLCCD_TRACE_INSTANT("main_thread_event");
  std::thread worker([] {
    RLCCD_SPAN("worker_span");
  });
  worker.join();
  rec.disable();

  JsonValue doc = parse_trace(rec);
  const JsonValue* main_ev = find_event(doc, "main_thread_event");
  const JsonValue* worker_ev = find_event(doc, "worker_span");
  ASSERT_NE(main_ev, nullptr);
  ASSERT_NE(worker_ev, nullptr);
  EXPECT_NE(main_ev->number_or("tid", -1.0), worker_ev->number_or("tid", -1.0))
      << "each thread exports its own timeline row";
}

#endif  // RLCCD_NO_TRACE

#ifndef RLCCD_NO_TRACE
TEST_F(TraceTest, MacrosDoNotEvaluateArgumentsWhenDisabled) {
  // The runtime gate must short-circuit before any work happens; building
  // the name below would be visible as a buffered event if it did not.
  ASSERT_FALSE(TraceRecorder::enabled());
  const std::uint64_t buffered_before =
      TraceRecorder::global().buffered_events();
  int evaluations = 0;
  auto name = [&evaluations]() -> std::string {
    ++evaluations;
    return "expensive_name";
  };
  (void)name;
  RLCCD_TRACE_INSTANT(name());
  EXPECT_EQ(evaluations, 0) << "arguments sit behind the enabled() branch";
  EXPECT_EQ(TraceRecorder::global().buffered_events(), buffered_before);
}
#else
TEST_F(TraceTest, MacrosCompileOutEntirely) {
  // Under RLCCD_NO_TRACE the macros must not evaluate their arguments.
  int evaluations = 0;
  auto name = [&evaluations]() -> std::string {
    ++evaluations;
    return "never";
  };
  (void)name;
  RLCCD_TRACE_INSTANT(name());
  RLCCD_TRACE_COMPLETE(name(), 0.0, 1.0);
  EXPECT_EQ(evaluations, 0);
}
#endif

}  // namespace
}  // namespace rlccd
