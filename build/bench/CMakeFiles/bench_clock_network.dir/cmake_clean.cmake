file(REMOVE_RECURSE
  "CMakeFiles/bench_clock_network.dir/bench_clock_network.cpp.o"
  "CMakeFiles/bench_clock_network.dir/bench_clock_network.cpp.o.d"
  "bench_clock_network"
  "bench_clock_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clock_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
