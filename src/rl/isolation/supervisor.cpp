#include "rl/isolation/supervisor.h"

#include "common/contracts.h"
#include "common/fault.h"
#include "common/ipc.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "common/telemetry_wire.h"
#include "common/trace.h"

#ifndef _WIN32
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#include <fcntl.h>
#endif

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstring>
#include <thread>

namespace rlccd {

const char* worker_failure_name(WorkerFailure f) {
  switch (f) {
    case WorkerFailure::kNone: return "none";
    case WorkerFailure::kExit: return "exit";
    case WorkerFailure::kSignal: return "signal";
    case WorkerFailure::kTimeout: return "timeout";
    case WorkerFailure::kProtocol: return "protocol";
  }
  return "?";
}

RolloutSupervisor::RolloutSupervisor(SupervisorConfig config)
    : config_(config) {
  RLCCD_EXPECTS(config.workers >= 1);
  RLCCD_EXPECTS(config.max_restarts >= 0);
}

#ifdef _WIN32

WorkerExit classify_worker_exit(int, bool, bool, bool) {
  WorkerExit out;
  out.failure = WorkerFailure::kProtocol;
  return out;
}

bool RolloutSupervisor::supported() { return false; }

std::vector<WorkerOutcome> RolloutSupervisor::run(const WorkerJob&) {
  RLCCD_LOG_ERROR("process isolation is not supported on this platform");
  return std::vector<WorkerOutcome>(
      static_cast<std::size_t>(config_.workers));
}

#else

WorkerExit classify_worker_exit(int wait_status, bool killed, bool stream_bad,
                                bool got_result) {
  WorkerExit out;
  if (got_result) return out;
  if (killed) {
    out.failure = WorkerFailure::kTimeout;
    out.term_signal = SIGKILL;
  } else if (stream_bad ||
             (WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0)) {
    // Malformed or truncated stream, an explicit error frame, or a clean
    // exit that never produced a result: the protocol was violated.
    out.failure = WorkerFailure::kProtocol;
  } else if (WIFEXITED(wait_status)) {
    out.failure = WorkerFailure::kExit;
    out.exit_code = WEXITSTATUS(wait_status);
  } else if (WIFSIGNALED(wait_status)) {
    out.failure = WorkerFailure::kSignal;
    out.term_signal = WTERMSIG(wait_status);
  } else {
    out.failure = WorkerFailure::kProtocol;
  }
  return out;
}

namespace {

double mono_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Fault directives for one spawn, decided in the parent so hit counting is
// global and deterministic (each forked child would otherwise count hits in
// its own copy of the injector).
struct Directives {
  bool crash = false;
  bool oom = false;
  bool truncate = false;
  bool hang = false;
  double hang_sec = 0.0;
};

bool targets_worker(double param, int w) {
  return param < 0.0 || static_cast<int>(param) == w;
}

Directives eval_directives(int w) {
  Directives d;
  double p = 0.0;
  if (fault_fire("worker_crash", &p) && targets_worker(p, w)) d.crash = true;
  p = 0.0;
  if (fault_fire("worker_oom", &p) && targets_worker(p, w)) d.oom = true;
  p = 0.0;
  if (fault_fire("pipe_truncate", &p) && targets_worker(p, w)) {
    d.truncate = true;
  }
  p = 0.0;
  if (fault_fire("worker_hang", &p)) {
    d.hang = true;
    d.hang_sec = p > 0.0 ? p : 3600.0;
  }
  return d;
}

[[noreturn]] void run_child(int w, int write_fd, const Directives& dir,
                            double hb_interval, const WorkerJob& job) {
  if (dir.crash) _exit(3);
  if (dir.oom) {
    // What the kernel OOM killer looks like from the outside.
    ::raise(SIGKILL);
    ::pause();
  }
  if (dir.hang) {
    // Wedge silently: no heartbeats, no result. The parent's heartbeat
    // timeout (or hard deadline) must notice and SIGKILL us.
    std::this_thread::sleep_for(std::chrono::duration<double>(dir.hang_sec));
    _exit(0);
  }

  // Trace shipping: the child inherits the parent recorder's runtime gate
  // and ring contents across fork; prime a cursor so only events recorded
  // *after* the fork ship back. Numeric telemetry is NOT shipped here — it
  // rides the result wire's TelemetrySnapshot, so nothing double-counts.
  TraceCursor trace_cursor;
  std::uint64_t obs_seq = 0;
  const bool ship_trace = TraceRecorder::enabled();
  if (ship_trace) TraceRecorder::global().sync_cursor(trace_cursor);
  // Single-threaded use only: the heartbeat thread calls this while alive,
  // the main thread only after joining it (final flush before the result).
  auto ship_obs = [&trace_cursor, &obs_seq, write_fd, ship_trace]() {
    if (!ship_trace) return;
    ObsDelta d;
    d.seq = ++obs_seq;
    d.source_pid = static_cast<std::int32_t>(::getpid());
    TraceRecorder::global().collect_since(trace_cursor, d.trace_events);
    if (d.trace_events.empty()) return;
    (void)write_frame(write_fd, FrameType::kTelemetry, d.encode());
  };

  std::atomic<bool> done{false};
  std::thread beat;
  if (hb_interval > 0.0) {
    beat = std::thread([&done, &ship_obs, write_fd, hb_interval]() {
      double last = mono_sec();
      while (!done.load(std::memory_order_relaxed)) {
        const double now = mono_sec();
        if (now - last >= hb_interval) {
          if (!write_frame(write_fd, FrameType::kHeartbeat, "").ok()) return;
          ship_obs();
          last = now;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  std::string payload;
  std::string error;
  bool failed = false;
  try {
    payload = job(w);
  } catch (const std::exception& e) {
    failed = true;
    error = e.what();
  } catch (...) {
    failed = true;
    error = "unknown exception";
  }
  done.store(true, std::memory_order_relaxed);
  if (beat.joinable()) beat.join();
  // Final flush: trace events recorded after the last heartbeat ship now,
  // so a clean completion loses nothing.
  ship_obs();

  if (failed) {
    (void)write_frame(write_fd, FrameType::kError, error);
    _exit(4);
  }
  if (dir.truncate) {
    (void)write_truncated_frame(write_fd, FrameType::kResult, payload,
                                payload.size() / 2);
    _exit(0);
  }
  Status s = write_frame(write_fd, FrameType::kResult, payload);
  _exit(s.ok() ? 0 : 5);
}

struct Slot {
  enum class State { kIdle, kBackoff, kRunning, kDone };
  State state = State::kIdle;
  double due = 0.0;  // kBackoff: earliest respawn time
  pid_t pid = -1;
  int fd = -1;
  FrameDecoder decoder;
  double started = 0.0;
  double last_activity = 0.0;  // any bytes read (heartbeat or payload)
  bool got_result = false;
  bool killed = false;
  const char* kill_reason = "";
  std::string error_frame;
  WorkerOutcome out;
  Rng jitter;

  Slot() : jitter(0) {}
};

}  // namespace

bool RolloutSupervisor::supported() { return true; }

std::vector<WorkerOutcome> RolloutSupervisor::run(const WorkerJob& job) {
  // A child whose parent-side read end vanished must see EPIPE, not die.
  static const bool sigpipe_ignored = []() {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)sigpipe_ignored;

  MetricsRegistry& reg = MetricsRegistry::global();
  static MetricsCounter& ctr_restarts = reg.counter("train.worker_restarts");
  static MetricsCounter& ctr_kills = reg.counter("train.worker_kills");

  const int n = config_.workers;
  std::vector<Slot> slots(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    slots[static_cast<std::size_t>(w)].jitter = Rng(
        config_.backoff_seed ^
        (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(w) + 1)));
  }

  auto spawn = [&](int w) {
    Slot& s = slots[static_cast<std::size_t>(w)];
    const Directives dir = eval_directives(w);
    Pipe pipe;
    Status ps = pipe_create(pipe);
    if (!ps.ok()) {
      // Out of fds is not a child crash; give up on this worker.
      RLCCD_LOG_ERROR("worker %d: %s", w, ps.to_string().c_str());
      s.state = Slot::State::kDone;
      return;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      RLCCD_LOG_ERROR("worker %d: fork: %s", w, std::strerror(errno));
      ::close(pipe.read_fd);
      ::close(pipe.write_fd);
      s.state = Slot::State::kDone;
      return;
    }
    if (pid == 0) {
      // Child: drop every inherited supervisor fd except our write end, so
      // sibling EOFs are not held open by us.
      ::close(pipe.read_fd);
      for (const Slot& other : slots) {
        if (other.state == Slot::State::kRunning && other.fd >= 0) {
          ::close(other.fd);
        }
      }
      run_child(w, pipe.write_fd, dir, config_.heartbeat_interval_sec, job);
    }
    ::close(pipe.write_fd);
    ::fcntl(pipe.read_fd, F_SETFL, O_NONBLOCK);
    s.state = Slot::State::kRunning;
    s.pid = pid;
    s.fd = pipe.read_fd;
    s.decoder = FrameDecoder();
    s.started = mono_sec();
    s.last_activity = s.started;
    s.got_result = false;
    s.killed = false;
    s.error_frame.clear();
    ++s.out.attempts;
  };

  // Classify a finished attempt and either schedule a restart with backoff
  // or mark the worker permanently failed.
  auto finalize = [&](int w) {
    Slot& s = slots[static_cast<std::size_t>(w)];
    ::close(s.fd);
    s.fd = -1;
    int st = 0;
    pid_t r;
    do {
      r = ::waitpid(s.pid, &st, 0);
    } while (r < 0 && errno == EINTR);
    s.pid = -1;

    if (s.got_result) {
      s.state = Slot::State::kDone;
      s.out.completed = true;
      return;
    }

    const bool stream_bad = !s.decoder.error().ok() ||
                            s.decoder.mid_frame() || !s.error_frame.empty();
    const WorkerExit cls =
        classify_worker_exit(st, s.killed, stream_bad, /*got_result=*/false);
    const WorkerFailure f = cls.failure;
    const int code = cls.exit_code;
    const int sig = cls.term_signal;
    s.out.last_failure = f;
    s.out.exit_code = code;
    s.out.term_signal = sig;

    const char* detail = s.killed ? s.kill_reason
                         : !s.error_frame.empty() ? s.error_frame.c_str()
                                                  : "";
    if (s.out.attempts <= config_.max_restarts) {
      const std::size_t restart =
          s.out.backoff_sec.size();  // 0-based restart index
      double delay = config_.backoff_base_sec *
                     std::pow(2.0, static_cast<double>(restart));
      delay = std::min(delay, config_.backoff_max_sec);
      delay *= 1.0 + 0.5 * s.jitter.uniform();
      s.out.backoff_sec.push_back(delay);
      s.state = Slot::State::kBackoff;
      s.due = mono_sec() + delay;
      ctr_restarts.increment();
      RLCCD_TRACE_INSTANT("train.worker_restart");
      RLCCD_LOG_WARN(
          "worker %d attempt %d failed (%s%s%s, exit=%d signal=%d); "
          "restarting in %.0f ms",
          w, s.out.attempts, worker_failure_name(f), *detail ? ": " : "",
          detail, code, sig, delay * 1e3);
    } else {
      s.state = Slot::State::kDone;
      RLCCD_LOG_ERROR(
          "worker %d lost after %d attempts (%s%s%s, exit=%d signal=%d)", w,
          s.out.attempts, worker_failure_name(f), *detail ? ": " : "",
          detail, code, sig);
    }
  };

  auto drain = [&](int w) {
    Slot& s = slots[static_cast<std::size_t>(w)];
    bool eof = false;
    std::size_t bytes = 0;
    Status rs = read_available(s.fd, s.decoder, eof, &bytes);
    if (bytes > 0) s.last_activity = mono_sec();
    Frame frame;
    while (s.decoder.next(frame)) {
      if (frame.type == static_cast<std::uint8_t>(FrameType::kResult)) {
        s.got_result = true;
        s.out.payload = std::move(frame.payload);
      } else if (frame.type == static_cast<std::uint8_t>(FrameType::kError)) {
        s.error_frame = std::move(frame.payload);
      } else if (frame.type ==
                 static_cast<std::uint8_t>(FrameType::kTelemetry)) {
        // Child trace events stitch into the parent timeline on the
        // child's pid row. A frame that fails to decode is dropped whole —
        // a torn delta can never half-apply.
        ObsDelta d;
        if (d.decode(frame.payload).ok()) {
          reg.merge_delta(d.telemetry);
          TraceRecorder::global().import_events(
              d.source_pid > 0 ? d.source_pid : static_cast<int>(s.pid),
              d.trace_events);
        }
      }
      // Heartbeats only refresh last_activity, done above.
    }
    if (!rs.ok()) {
      RLCCD_LOG_WARN("worker %d: pipe read: %s", w, rs.to_string().c_str());
      finalize(w);
      return;
    }
    if (eof) finalize(w);  // the attempt is over, whatever happened
  };

  const bool hb_on =
      config_.heartbeat_interval_sec > 0.0 && config_.heartbeat_timeout_sec > 0.0;
  for (;;) {
    double now = mono_sec();
    // Spawn everything that is due (initial spawns in worker order).
    for (int w = 0; w < n; ++w) {
      Slot& s = slots[static_cast<std::size_t>(w)];
      if (s.state == Slot::State::kIdle ||
          (s.state == Slot::State::kBackoff && s.due <= now)) {
        spawn(w);
      }
    }

    std::vector<pollfd> fds;
    std::vector<int> fd_worker;
    double next_event = now + 0.2;  // idle tick
    bool any_pending = false;
    for (int w = 0; w < n; ++w) {
      Slot& s = slots[static_cast<std::size_t>(w)];
      if (s.state == Slot::State::kRunning) {
        any_pending = true;
        fds.push_back(pollfd{s.fd, POLLIN, 0});
        fd_worker.push_back(w);
        if (config_.deadline_sec > 0.0) {
          next_event = std::min(next_event, s.started + config_.deadline_sec);
        }
        if (hb_on) {
          next_event = std::min(
              next_event, s.last_activity + config_.heartbeat_timeout_sec);
        }
      } else if (s.state == Slot::State::kBackoff) {
        any_pending = true;
        next_event = std::min(next_event, s.due);
      }
    }
    if (!any_pending) break;

    const int timeout_ms = std::max(
        1, static_cast<int>(std::ceil((next_event - now) * 1e3)));
    int pr;
    do {
      pr = ::poll(fds.data(), fds.size(), timeout_ms);
    } while (pr < 0 && errno == EINTR);

    for (std::size_t i = 0; i < fds.size(); ++i) {
      const int w = fd_worker[i];
      Slot& s = slots[static_cast<std::size_t>(w)];
      if (s.state != Slot::State::kRunning) continue;
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) drain(w);
    }

    // Enforcement: hard deadline and heartbeat silence.
    now = mono_sec();
    for (int w = 0; w < n; ++w) {
      Slot& s = slots[static_cast<std::size_t>(w)];
      if (s.state != Slot::State::kRunning) continue;
      const bool over_deadline =
          config_.deadline_sec > 0.0 &&
          now - s.started > config_.deadline_sec;
      const bool hb_silent =
          hb_on && now - s.last_activity > config_.heartbeat_timeout_sec;
      if (!over_deadline && !hb_silent) continue;
      s.killed = true;
      s.kill_reason = over_deadline ? "deadline exceeded" : "heartbeat lost";
      ++s.out.kills;
      ctr_kills.increment();
      RLCCD_TRACE_INSTANT("train.worker_kill");
      RLCCD_LOG_WARN("worker %d: %s after %.2fs; sending SIGKILL", w,
                     s.kill_reason, now - s.started);
      ::kill(s.pid, SIGKILL);
      // The EOF that follows the kill finalizes and classifies the attempt.
    }
  }

  std::vector<WorkerOutcome> outcomes;
  outcomes.reserve(static_cast<std::size_t>(n));
  for (Slot& s : slots) outcomes.push_back(std::move(s.out));
  return outcomes;
}

#endif  // _WIN32

}  // namespace rlccd
