#include "rl/trainer.h"

#include <gtest/gtest.h>

namespace rlccd {
namespace {

Design small_design(std::uint64_t seed = 91) {
  GeneratorConfig cfg;
  cfg.target_cells = 400;
  cfg.seed = seed;
  cfg.clock_tightness = 0.72;
  return generate_design(cfg);
}

TrainConfig fast_config(const Design& d) {
  TrainConfig cfg;
  cfg.workers = 2;
  cfg.max_iterations = 3;
  cfg.min_iterations = 1;
  cfg.patience = 3;
  cfg.flow = default_flow_config(d.netlist->num_real_cells(),
                                 d.clock_period);
  return cfg;
}

TEST(Trainer, RecordsHistoryAndBaselines) {
  Design d = small_design();
  Policy policy(PolicyConfig{}, 1);
  ReinforceTrainer trainer(&d, &policy, fast_config(d));
  TrainStats stats = trainer.train();

  EXPECT_LT(stats.begin_tns, 0.0);
  EXPECT_GE(stats.default_tns, stats.begin_tns);
  EXPECT_GE(stats.iterations, 1);
  EXPECT_EQ(stats.history.size(), static_cast<std::size_t>(stats.iterations));
  // workers rollouts per iteration plus the final greedy decode.
  EXPECT_EQ(stats.flow_runs, stats.iterations * 2 + 1);
  EXPECT_GT(stats.train_seconds, 0.0);
}

TEST(Trainer, BestNeverWorseThanDefault) {
  Design d = small_design(93);
  Policy policy(PolicyConfig{}, 2);
  ReinforceTrainer trainer(&d, &policy, fast_config(d));
  TrainStats stats = trainer.train();
  EXPECT_GE(stats.best_tns, stats.default_tns)
      << "the empty selection is always available as a fallback";
  // best_tns history is monotone non-decreasing.
  for (std::size_t i = 1; i < stats.history.size(); ++i) {
    EXPECT_GE(stats.history[i].best_tns, stats.history[i - 1].best_tns);
  }
}

TEST(Trainer, EvaluateSelectionDoesNotMutateDesign) {
  Design d = small_design(95);
  Policy policy(PolicyConfig{}, 3);
  ReinforceTrainer trainer(&d, &policy, fast_config(d));
  std::size_t cells_before = d.netlist->num_cells();
  FlowResult r = trainer.evaluate_selection({});
  EXPECT_EQ(d.netlist->num_cells(), cells_before)
      << "the flow must run on a copy";
  EXPECT_GE(r.final_summary.tns, r.begin.tns);
}

TEST(Trainer, DeterministicAcrossRuns) {
  Design d = small_design(97);
  auto run_once = [&]() {
    Policy policy(PolicyConfig{}, 4);
    ReinforceTrainer trainer(&d, &policy, fast_config(d));
    return trainer.train();
  };
  TrainStats a = run_once();
  TrainStats b = run_once();
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_DOUBLE_EQ(a.best_tns, b.best_tns);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history[i].mean_tns, b.history[i].mean_tns);
  }
}

TEST(Trainer, EarlyStopsAfterPatienceExhausted) {
  Design d = small_design(99);
  Policy policy(PolicyConfig{}, 5);
  TrainConfig cfg = fast_config(d);
  cfg.max_iterations = 50;
  cfg.patience = 2;
  cfg.min_iterations = 1;
  ReinforceTrainer trainer(&d, &policy, cfg);
  TrainStats stats = trainer.train();
  EXPECT_LT(stats.iterations, 50) << "patience should stop training early";
}

TEST(Trainer, ObserverReceivesOneEventPerIteration) {
  // The observer contract: exactly one "train"/"iteration" event per
  // iteration, carrying the same values recorded in TrainStats::history.
  struct Recorded {
    int index;
    double seconds;
    double mean_reward, mean_tns, iter_best_tns, best_tns, mean_steps;
  };
  class RecordingObserver : public ProgressObserver {
   public:
    void on_event(const ProgressEvent& e) override {
      ASSERT_EQ(e.phase, "train");
      ASSERT_EQ(e.step, "iteration");
      events.push_back(Recorded{
          e.index, e.seconds, e.metric("mean_reward"), e.metric("mean_tns"),
          e.metric("iter_best_tns"), e.metric("best_tns"),
          e.metric("mean_steps")});
    }
    std::vector<Recorded> events;
  };

  Design d = small_design(103);
  Policy policy(PolicyConfig{}, 7);
  RecordingObserver observer;
  TrainConfig cfg = fast_config(d);
  cfg.observer = &observer;
  ReinforceTrainer trainer(&d, &policy, cfg);
  TrainStats stats = trainer.train();

  ASSERT_EQ(observer.events.size(), stats.history.size());
  for (std::size_t i = 0; i < stats.history.size(); ++i) {
    const Recorded& e = observer.events[i];
    const IterationStats& h = stats.history[i];
    EXPECT_EQ(e.index, static_cast<int>(i));
    EXPECT_GT(e.seconds, 0.0);
    EXPECT_DOUBLE_EQ(e.mean_reward, h.mean_reward);
    EXPECT_DOUBLE_EQ(e.mean_tns, h.mean_tns);
    EXPECT_DOUBLE_EQ(e.iter_best_tns, h.iter_best_tns);
    EXPECT_DOUBLE_EQ(e.best_tns, h.best_tns);
    EXPECT_DOUBLE_EQ(e.mean_steps, h.mean_steps);
  }
}

TEST(Trainer, ParallelWorkersMatchMoreWorkersDeterminism) {
  // Different worker counts explore differently but both must be valid and
  // deterministic; 1-worker training must also work (degenerate case).
  Design d = small_design(101);
  Policy policy(PolicyConfig{}, 6);
  TrainConfig cfg = fast_config(d);
  cfg.workers = 1;
  ReinforceTrainer trainer(&d, &policy, cfg);
  TrainStats stats = trainer.train();
  EXPECT_GE(stats.iterations, 1);
}

}  // namespace
}  // namespace rlccd
