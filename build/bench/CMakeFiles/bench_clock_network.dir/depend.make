# Empty dependencies file for bench_clock_network.
# This may be replaced when dependencies are built.
