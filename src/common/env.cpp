#include "common/env.h"

#include <cstdlib>
#include <cstring>

namespace rlccd {

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

long env_int(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  if (end == v) return fallback;
  return parsed;
}

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "yes") == 0 || std::strcmp(v, "on") == 0;
}

}  // namespace rlccd
