file(REMOVE_RECURSE
  "librlccd_opt.a"
)
