// The rlccd_serve daemon: a crash-surviving optimization service.
//
// One single-threaded poll() event loop multiplexes the Unix-socket
// listener, every connected client, a self-pipe for signals, and one pipe
// per running job worker. Jobs run in forked children (one process per
// job attempt), so a crashing training run — segfault, OOM kill, wedge —
// costs one attempt, never the daemon:
//
//   * the daemon classifies the death with the PR 7 supervisor's
//     classify_worker_exit() and retries with exponential backoff plus
//     deterministic jitter, resuming from the job's newest checkpoint
//     (PR 3), so the retried result is bit-identical to an uncrashed run;
//   * admission control bounds the queue (global depth + per-session
//     caps); a full queue sheds the lowest-priority queued job only for a
//     strictly-higher-priority submit, else rejects with a reason;
//   * a hard per-attempt deadline and a heartbeat-silence timeout are
//     enforced with SIGKILL;
//   * slow or vanished clients are dropped when their output buffer passes
//     a bound — a stuck reader cannot wedge the loop;
//   * SIGTERM drains: queued jobs are shed (reported, never silent),
//     running children get SIGTERM and stop at their next iteration
//     boundary with everything completed already checkpointed, and the
//     daemon exits 0 once every job is terminal (1 when the drain deadline
//     forces SIGKILL).
//
// Fault points, evaluated in the daemon so hit counts are deterministic:
//   serve_accept_fail@H[:C]   accepted connection is dropped immediately
//   serve_queue_full@H[:C]    a submit is admitted as if the queue were full
//   serve_client_disconnect@H[:C]  client connection force-closed after a
//                                  request is handled
//   serve_worker_crash@H[:C[:N]]   job child _exit(3)s after N checkpoints
//                                  (default 0: before training starts)
#pragma once

#ifndef _WIN32

#include <cstdint>
#include <string>

#include "common/status.h"
#include "serve/queue.h"

namespace rlccd {
namespace serve {

struct ServeConfig {
  std::string socket_path;  // Unix-domain socket the daemon listens on
  std::string root_dir;     // session workspaces live under here
  int workers = 2;          // concurrent job children
  QueueConfig queue;

  // Retries per job (attempts = retries + 1); backoff before retry r is
  // min(base * 2^r, max) * (1 + u/2), u deterministic per (seed, job id).
  int job_retries = 2;
  double retry_backoff_base_sec = 0.05;
  double retry_backoff_max_sec = 2.0;
  std::uint64_t backoff_seed = 1;

  // Default per-attempt wall-clock deadline (SIGKILL); a JobSpec deadline
  // overrides it per job. <= 0 disables.
  double job_deadline_sec = 300.0;
  // Job children heartbeat this often; silence past the timeout is a wedge
  // (SIGKILL + retry). <= 0 disables either side.
  double heartbeat_interval_sec = 0.25;
  double heartbeat_timeout_sec = 10.0;
  // SIGTERM drain: children still alive this long after the drain began
  // are SIGKILLed and their jobs marked failed; the daemon then exits 1.
  double drain_timeout_sec = 30.0;

  // kStatsWatch subscribers get a fresh stats JSON push this often while
  // subscribed (the first push is immediate). <= 0 disables pushes.
  double stats_push_interval_sec = 0.25;

  int max_clients = 64;
  // A client whose unsent output passes this bound is disconnected
  // (backpressure: a stalled reader must not buffer the daemon into the
  // ground).
  std::size_t client_outbuf_limit = 8u << 20;
};

class ServeDaemon {
 public:
  explicit ServeDaemon(ServeConfig config);
  ~ServeDaemon();
  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  // Creates the root directory, binds the socket, opens the self-pipe.
  Status init();

  // Runs the event loop until a drain completes. 0: clean drain (every job
  // terminal, children exited on their own); 1: the drain deadline forced
  // SIGKILLs. init() must have succeeded.
  int run();

  // Begins a graceful drain; async-signal-safe (one write to the
  // self-pipe), callable from a SIGTERM/SIGINT handler.
  void request_shutdown();

  [[nodiscard]] const ServeConfig& config() const { return config_; }

 private:
  friend struct DaemonLoop;
  ServeConfig config_;
  int listen_fd_ = -1;
  int stop_read_fd_ = -1;
  int stop_write_fd_ = -1;
};

}  // namespace serve
}  // namespace rlccd

#endif  // !_WIN32
