#include "designgen/generator.h"

#include <gtest/gtest.h>

#include "sta/cone.h"
#include "sta/sta.h"

namespace rlccd {
namespace {

GeneratorConfig base_config(std::uint64_t seed = 1) {
  GeneratorConfig cfg;
  cfg.target_cells = 800;
  cfg.seed = seed;
  return cfg;
}

TEST(Generator, HitsTargetCellCountApproximately) {
  Design d = generate_design(base_config());
  double n = static_cast<double>(d.netlist->num_real_cells());
  EXPECT_GT(n, 0.9 * 800);
  EXPECT_LT(n, 1.1 * 800);
}

TEST(Generator, SequentialFractionApproximatelyRespected) {
  GeneratorConfig cfg = base_config();
  cfg.seq_fraction = 0.25;
  Design d = generate_design(cfg);
  double frac = static_cast<double>(d.netlist->sequential_cells().size()) /
                static_cast<double>(d.netlist->num_real_cells());
  EXPECT_NEAR(frac, 0.25, 0.05);
}

TEST(Generator, NetlistIsValidAndAcyclic) {
  Design d = generate_design(base_config(7));
  d.netlist->validate();
  // STA construction asserts on combinational cycles.
  Sta sta = d.make_sta();
  sta.run();
  SUCCEED();
}

TEST(Generator, DeterministicForSameSeed) {
  Design a = generate_design(base_config(11));
  Design b = generate_design(base_config(11));
  ASSERT_EQ(a.netlist->num_cells(), b.netlist->num_cells());
  ASSERT_EQ(a.netlist->num_nets(), b.netlist->num_nets());
  EXPECT_DOUBLE_EQ(a.clock_period, b.clock_period);
  Sta sa = a.make_sta();
  Sta sb = b.make_sta();
  sa.run();
  sb.run();
  EXPECT_DOUBLE_EQ(sa.summary().tns, sb.summary().tns);
}

TEST(Generator, DifferentSeedsGiveDifferentDesigns) {
  Design a = generate_design(base_config(1));
  Design b = generate_design(base_config(2));
  Sta sa = a.make_sta();
  Sta sb = b.make_sta();
  sa.run();
  sb.run();
  EXPECT_NE(sa.summary().tns, sb.summary().tns);
}

TEST(Generator, ClockTightnessCreatesViolations) {
  GeneratorConfig cfg = base_config(3);
  cfg.clock_tightness = 0.7;
  Design d = generate_design(cfg);
  Sta sta = d.make_sta();
  sta.run();
  TimingSummary s = sta.summary();
  EXPECT_LT(s.wns, 0.0);
  EXPECT_GT(s.nve, 0u);

  cfg.clock_tightness = 0.9;  // looser clock -> fewer violations
  Design easy = generate_design(cfg);
  Sta sta2 = easy.make_sta();
  sta2.run();
  EXPECT_LT(s.tns, sta2.summary().tns);
}

TEST(Generator, ExplicitPeriodOverridesTightness) {
  GeneratorConfig cfg = base_config(5);
  cfg.clock_period = 2.5;
  Design d = generate_design(cfg);
  EXPECT_DOUBLE_EQ(d.clock_period, 2.5);
}

TEST(Generator, SelfLoopsExist) {
  GeneratorConfig cfg = base_config(13);
  cfg.self_loop_fraction = 0.2;
  cfg.target_cells = 1200;
  Design d = generate_design(cfg);
  const Netlist& nl = *d.netlist;

  // A self-loop flop's fan-in cone is reachable from its own Q output.
  int self_loops = 0;
  for (CellId ff : nl.sequential_cells()) {
    FanInCone cone = trace_fanin_cone(nl, nl.cell(ff).inputs[0]);
    // Check whether any cone cell is driven (transitively, depth-1 check
    // suffices for chain heads) by this flop's Q net.
    NetId q = nl.pin(nl.cell(ff).output).net;
    if (!q.valid()) continue;
    for (PinId sink : nl.net(q).sinks) {
      CellId consumer = nl.pin(sink).cell;
      if (std::binary_search(cone.begin(), cone.end(), consumer)) {
        ++self_loops;
        break;
      }
    }
  }
  EXPECT_GT(self_loops, 0);
}

TEST(Generator, ConesOverlapSoMaskingHasStructure) {
  Design d = generate_design(base_config(17));
  Sta sta = d.make_sta();
  sta.run();
  std::vector<PinId> vio = sta.endpoint_violations();
  ASSERT_GT(vio.size(), 4u);
  ConeIndex cones(*d.netlist, vio);
  int overlapping_pairs = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(cones.size(), 30); ++i) {
    for (std::size_t j = i + 1; j < std::min<std::size_t>(cones.size(), 30);
         ++j) {
      if (cones.overlap(i, j) > 0.3) ++overlapping_pairs;
    }
  }
  EXPECT_GT(overlapping_pairs, 0)
      << "overlap masking would be a no-op on this design";
}

TEST(Generator, ActivityAndTogglesPopulated) {
  Design d = generate_design(base_config(19));
  EXPECT_EQ(d.activity.net_toggle.size(), d.netlist->num_nets());
  EXPECT_EQ(d.pi_toggles.size(), d.netlist->primary_inputs().size());
}

}  // namespace
}  // namespace rlccd
