#include "gnn/ep_gnn.h"

#include <cmath>

namespace rlccd {

EpGnn::EpGnn(const EpGnnConfig& config, Rng& rng) : config_(config) {
  RLCCD_EXPECTS(config.layers >= 1);
  std::size_t in = config.in_features;
  for (int l = 0; l < config.layers; ++l) {
    proj_.emplace_back(in, config.hidden, rng);
    agg_.emplace_back(in, config.hidden, rng);
    gate_.push_back(Tensor::zeros(1, 1, /*requires_grad=*/true));
    in = config.hidden;
  }
  fc_ = Linear(config.hidden, config.embedding, rng);
}

Tensor EpGnn::forward(const Tensor& x, const SparseOperand& adj,
                      const SparseOperand& cones,
                      const std::vector<std::size_t>& ep_rows) const {
  RLCCD_EXPECTS(x.cols() == config_.in_features);
  RLCCD_EXPECTS(adj.matrix.rows == x.rows());
  RLCCD_EXPECTS(cones.matrix.cols == x.rows());
  RLCCD_EXPECTS(cones.matrix.rows == ep_rows.size());

  Tensor h = x;
  for (std::size_t l = 0; l < proj_.size(); ++l) {
    Tensor gamma = ops::sigmoid(gate_[l]);               // (0,1)
    Tensor one_minus = ops::affine(gamma, -1.0f, 1.0f);  // 1 - gamma
    Tensor self_term = ops::scale_by_scalar(proj_[l].forward(h), gamma);
    Tensor neigh = ops::spmm(adj, h);
    Tensor agg_term =
        ops::scale_by_scalar(agg_[l].forward(neigh), one_minus);
    h = ops::sigmoid(ops::add(self_term, agg_term));
  }

  Tensor ep_self = ops::gather_rows(h, ep_rows);
  Tensor cone_sum = ops::spmm(cones, h);
  return fc_.forward(ops::add(ep_self, cone_sum));
}

Tensor EpGnn::forward_batched(const Tensor& x, const SparseOperand& adj,
                              const SparseOperand& cones,
                              const std::vector<std::size_t>& ep_rows,
                              std::size_t blocks) const {
  RLCCD_EXPECTS(blocks >= 1);
  RLCCD_EXPECTS(x.cols() == config_.in_features);
  RLCCD_EXPECTS(x.rows() == adj.matrix.rows * blocks);
  RLCCD_EXPECTS(cones.matrix.cols == adj.matrix.rows);
  RLCCD_EXPECTS(cones.matrix.rows == ep_rows.size());
  const std::size_t num_cells = adj.matrix.rows;

  Tensor h = x;
  for (std::size_t l = 0; l < proj_.size(); ++l) {
    Tensor gamma = ops::sigmoid(gate_[l]);
    Tensor one_minus = ops::affine(gamma, -1.0f, 1.0f);
    Tensor self_term = ops::scale_by_scalar(proj_[l].forward(h), gamma);
    Tensor neigh = ops::spmm_blocked(adj, h, blocks);
    Tensor agg_term =
        ops::scale_by_scalar(agg_[l].forward(neigh), one_minus);
    h = ops::sigmoid(ops::add(self_term, agg_term));
  }

  // Gather each block's endpoint rows at their stacked offsets.
  std::vector<std::size_t> stacked_rows;
  stacked_rows.reserve(ep_rows.size() * blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t r : ep_rows) stacked_rows.push_back(b * num_cells + r);
  }
  Tensor ep_self = ops::gather_rows(h, stacked_rows);
  Tensor cone_sum = ops::spmm_blocked(cones, h, blocks);
  return fc_.forward(ops::add(ep_self, cone_sum));
}

std::vector<Tensor> EpGnn::parameters() const {
  std::vector<Tensor> params;
  for (std::size_t l = 0; l < proj_.size(); ++l) {
    for (Tensor& t : proj_[l].parameters()) params.push_back(t);
    for (Tensor& t : agg_[l].parameters()) params.push_back(t);
    params.push_back(gate_[l]);
  }
  for (Tensor& t : fc_.parameters()) params.push_back(t);
  return params;
}

std::vector<float> EpGnn::gamma_values() const {
  std::vector<float> out;
  for (const Tensor& g : gate_) {
    out.push_back(1.0f / (1.0f + std::exp(-g.item())));
  }
  return out;
}

}  // namespace rlccd
