# Empty dependencies file for designgen_tests.
# This may be replaced when dependencies are built.
