#include "rl/isolation/wire.h"

#include "common/ipc.h"
#include "common/telemetry_wire.h"

namespace rlccd {

namespace {

void append_audit(std::string& out, const SelectionAudit& audit) {
  ipc_append_pod(out, static_cast<std::uint8_t>(audit.poisoned));
  ipc_append_pod(out, static_cast<std::uint32_t>(audit.steps.size()));
  for (const AuditStep& step : audit.steps) {
    ipc_append_pod(out, step.chosen);
    ipc_append_pod(out, step.slack);
    ipc_append_pod(out, step.log_prob);
    ipc_append_pod(out, step.entropy);
    ipc_append_pod(out, static_cast<std::uint8_t>(step.top_probs.size()));
    for (const auto& [endpoint, prob] : step.top_probs) {
      ipc_append_pod(out, endpoint);
      ipc_append_pod(out, prob);
    }
    ipc_append_pod(out, static_cast<std::uint32_t>(step.masked.size()));
    for (const AuditMaskEvent& ev : step.masked) {
      ipc_append_pod(out, ev.endpoint);
      ipc_append_pod(out, ev.overlap);
    }
  }
}

Status parse_audit(std::string_view bytes, std::size_t& offset,
                   SelectionAudit& audit) {
  std::uint8_t poisoned = 0;
  RLCCD_TRY(ipc_parse_pod(bytes, offset, poisoned, "audit poisoned"));
  audit.poisoned = poisoned != 0;
  std::uint32_t n_steps = 0;
  RLCCD_TRY(ipc_parse_pod(bytes, offset, n_steps, "audit step count"));
  if (n_steps > bytes.size() - offset) {
    return Status::corrupt("audit step count %u exceeds remaining bytes",
                           n_steps);
  }
  audit.steps.resize(n_steps);
  for (AuditStep& step : audit.steps) {
    RLCCD_TRY(ipc_parse_pod(bytes, offset, step.chosen, "audit chosen"));
    RLCCD_TRY(ipc_parse_pod(bytes, offset, step.slack, "audit slack"));
    RLCCD_TRY(ipc_parse_pod(bytes, offset, step.log_prob, "audit log_prob"));
    RLCCD_TRY(ipc_parse_pod(bytes, offset, step.entropy, "audit entropy"));
    std::uint8_t n_top = 0;
    RLCCD_TRY(ipc_parse_pod(bytes, offset, n_top, "audit top-k count"));
    step.top_probs.resize(n_top);
    for (auto& [endpoint, prob] : step.top_probs) {
      RLCCD_TRY(ipc_parse_pod(bytes, offset, endpoint, "top-k endpoint"));
      RLCCD_TRY(ipc_parse_pod(bytes, offset, prob, "top-k probability"));
    }
    std::uint32_t n_masked = 0;
    RLCCD_TRY(ipc_parse_pod(bytes, offset, n_masked, "audit mask count"));
    if (n_masked > bytes.size() - offset) {
      return Status::corrupt("audit mask count %u exceeds remaining bytes",
                             n_masked);
    }
    step.masked.resize(n_masked);
    for (AuditMaskEvent& ev : step.masked) {
      RLCCD_TRY(ipc_parse_pod(bytes, offset, ev.endpoint, "masked endpoint"));
      RLCCD_TRY(ipc_parse_pod(bytes, offset, ev.overlap, "masked overlap"));
    }
  }
  return Status();
}

}  // namespace

void append_eval_outcome(std::string& out, const EvalOutcome& outcome) {
  ipc_append_pod(out, outcome.summary.wns);
  ipc_append_pod(out, outcome.summary.tns);
  ipc_append_pod(out, static_cast<std::uint64_t>(outcome.summary.nve));
  ipc_append_pod(out,
                 static_cast<std::uint64_t>(outcome.summary.num_endpoints));
  ipc_append_pod(out, outcome.summary.worst_hold_slack);
  ipc_append_pod(out, outcome.reward);
  ipc_append_pod(out, static_cast<std::uint8_t>(outcome.flow_ran));
  ipc_append_pod(out, static_cast<std::uint8_t>(outcome.cancelled));
  ipc_append_pod(out, outcome.state_hash.lo);
  ipc_append_pod(out, outcome.state_hash.hi);
  ipc_append_pod(out, static_cast<std::uint8_t>(outcome.cache_hit));
  ipc_append_pod(out, outcome.flow_sec);
  ipc_append_pod(out, outcome.sta_pin_updates);
}

Status parse_eval_outcome(std::string_view bytes, std::size_t& offset,
                          EvalOutcome& out) {
  RLCCD_TRY(ipc_parse_pod(bytes, offset, out.summary.wns, "outcome wns"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, out.summary.tns, "outcome tns"));
  std::uint64_t nve = 0, num_endpoints = 0;
  RLCCD_TRY(ipc_parse_pod(bytes, offset, nve, "outcome nve"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, num_endpoints, "outcome endpoints"));
  out.summary.nve = static_cast<std::size_t>(nve);
  out.summary.num_endpoints = static_cast<std::size_t>(num_endpoints);
  RLCCD_TRY(ipc_parse_pod(bytes, offset, out.summary.worst_hold_slack,
                          "outcome hold slack"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, out.reward, "outcome reward"));
  std::uint8_t flow_ran = 0, cancelled = 0, cache_hit = 0;
  RLCCD_TRY(ipc_parse_pod(bytes, offset, flow_ran, "outcome flow_ran"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, cancelled, "outcome cancelled"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, out.state_hash.lo, "state hash lo"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, out.state_hash.hi, "state hash hi"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, cache_hit, "outcome cache_hit"));
  out.flow_ran = flow_ran != 0;
  out.cancelled = cancelled != 0;
  out.cache_hit = cache_hit != 0;
  RLCCD_TRY(ipc_parse_pod(bytes, offset, out.flow_sec, "outcome flow_sec"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, out.sta_pin_updates,
                          "outcome pin updates"));
  return Status();
}

void encode_rollout_wire(const RolloutWire& wire, std::string& out) {
  out.clear();
  ipc_append_pod(out, RolloutWire::kVersion);
  append_eval_outcome(out, wire.outcome);
  ipc_append_pod(out, wire.steps);
  ipc_append_pod(out, static_cast<std::uint8_t>(wire.poisoned));
  ipc_append_pod(out, static_cast<std::uint32_t>(wire.selection.size()));
  for (PinId pin : wire.selection) ipc_append_pod(out, pin.value);
  ipc_append_pod(out, static_cast<std::uint32_t>(wire.grads.size()));
  for (const std::vector<float>& g : wire.grads) ipc_append_float_vec(out, g);
  append_audit(out, wire.audit);
  append_telemetry_snapshot(out, wire.telemetry);
}

Status decode_rollout_wire(std::string_view bytes, RolloutWire& out) {
  std::size_t offset = 0;
  std::uint8_t version = 0;
  RLCCD_TRY(ipc_parse_pod(bytes, offset, version, "wire version"));
  if (version != RolloutWire::kVersion) {
    return Status::corrupt("rollout wire version %u, expected %u", version,
                           RolloutWire::kVersion);
  }
  RLCCD_TRY(parse_eval_outcome(bytes, offset, out.outcome));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, out.steps, "steps"));
  std::uint8_t poisoned = 0;
  RLCCD_TRY(ipc_parse_pod(bytes, offset, poisoned, "poisoned"));
  out.poisoned = poisoned != 0;

  std::uint32_t n_sel = 0;
  RLCCD_TRY(ipc_parse_pod(bytes, offset, n_sel, "selection count"));
  if (n_sel > bytes.size() - offset) {
    return Status::corrupt("selection count %u exceeds remaining bytes", n_sel);
  }
  out.selection.resize(n_sel);
  for (PinId& pin : out.selection) {
    RLCCD_TRY(ipc_parse_pod(bytes, offset, pin.value, "selection pin"));
  }

  std::uint32_t n_grads = 0;
  RLCCD_TRY(ipc_parse_pod(bytes, offset, n_grads, "gradient tensor count"));
  if (n_grads > bytes.size() - offset) {
    return Status::corrupt("gradient tensor count %u exceeds remaining bytes",
                           n_grads);
  }
  out.grads.resize(n_grads);
  for (std::vector<float>& g : out.grads) {
    RLCCD_TRY(ipc_parse_float_vec(bytes, offset, g, "gradient tensor"));
  }

  RLCCD_TRY(parse_audit(bytes, offset, out.audit));

  RLCCD_TRY(parse_telemetry_snapshot(bytes, offset, out.telemetry));
  if (offset != bytes.size()) {
    return Status::corrupt("rollout wire has %zu trailing bytes",
                           bytes.size() - offset);
  }
  return Status();
}

}  // namespace rlccd
