#include "common/json.h"

#include <gtest/gtest.h>

namespace rlccd {
namespace {

TEST(Json, ParsesScalars) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::parse("null", v).ok());
  EXPECT_TRUE(v.is_null());
  ASSERT_TRUE(JsonValue::parse("true", v).ok());
  EXPECT_TRUE(v.is_bool());
  EXPECT_TRUE(v.bool_value());
  ASSERT_TRUE(JsonValue::parse("false", v).ok());
  EXPECT_FALSE(v.bool_value());
  ASSERT_TRUE(JsonValue::parse("-12.5e2", v).ok());
  EXPECT_DOUBLE_EQ(v.number_value(), -1250.0);
  ASSERT_TRUE(JsonValue::parse("\"hi\"", v).ok());
  EXPECT_EQ(v.string_value(), "hi");
}

TEST(Json, ParsesNestedStructure) {
  JsonValue v;
  Status s = JsonValue::parse(
      R"({"counters":{"sta.full_runs":3},"spans":[{"name":"flow","total_sec":1.25,"children":[]}],"ok":true})",
      v);
  ASSERT_TRUE(s.ok()) << s.to_string();
  ASSERT_TRUE(v.is_object());
  const JsonValue* counters = v.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->number_or("sta.full_runs", 0.0), 3.0);
  const JsonValue* spans = v.find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  ASSERT_EQ(spans->array_items().size(), 1u);
  const JsonValue& flow = spans->array_items()[0];
  EXPECT_EQ(flow.string_or("name", ""), "flow");
  EXPECT_DOUBLE_EQ(flow.number_or("total_sec", 0.0), 1.25);
  EXPECT_TRUE(flow.find("children")->array_items().empty());
  EXPECT_TRUE(v.bool_or("ok", false));
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, DecodesEscapes) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::parse(R"("a\n\t\"\\\u0041\u00e9")", v).ok());
  EXPECT_EQ(v.string_value(), "a\n\t\"\\A\xc3\xa9");
}

TEST(Json, TypedLookupsFallBack) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::parse(R"({"s":"x","n":1})", v).ok());
  EXPECT_DOUBLE_EQ(v.number_or("s", -1.0), -1.0) << "wrong type falls back";
  EXPECT_EQ(v.string_or("n", "d"), "d");
  EXPECT_DOUBLE_EQ(v.number_or("absent", 7.0), 7.0);
}

TEST(Json, RejectsMalformedDocuments) {
  JsonValue v;
  EXPECT_FALSE(JsonValue::parse("", v).ok());
  EXPECT_FALSE(JsonValue::parse("{", v).ok());
  EXPECT_FALSE(JsonValue::parse("{\"a\":}", v).ok());
  EXPECT_FALSE(JsonValue::parse("[1,2", v).ok());
  EXPECT_FALSE(JsonValue::parse("\"unterminated", v).ok());
  EXPECT_FALSE(JsonValue::parse("1 2", v).ok()) << "trailing content";
  EXPECT_FALSE(JsonValue::parse("{\"a\":1}x", v).ok());
  EXPECT_FALSE(JsonValue::parse("nul", v).ok());
  EXPECT_FALSE(JsonValue::parse("--3", v).ok());
}

TEST(Json, DepthLimitGuardsRecursion) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  JsonValue v;
  EXPECT_FALSE(JsonValue::parse(deep, v).ok());
}

}  // namespace
}  // namespace rlccd
