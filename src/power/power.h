// Switching-activity propagation and power reporting.
//
// Activity is a per-net toggle rate in [0, 1] (fraction of clock cycles the
// net switches). Primary-input rates come from the design generator;
// combinational gates attenuate/combine their input rates by kind, and flop
// outputs are damped samples of their D input. Power is reported in three
// components, mirroring Table I's features and Table II's "total power"
// column:
//   leakage   = sum of cell leakage,
//   internal  = sum of cell internal energy x output toggle rate,
//   switching = k * net load capacitance x toggle rate.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace rlccd {

struct SwitchingActivity {
  // Indexed by NetId; toggles in [0, 1].
  std::vector<double> net_toggle;

  [[nodiscard]] double toggle(NetId net) const {
    if (!net.valid() || net.index() >= net_toggle.size()) return 0.0;
    return net_toggle[net.index()];
  }
};

struct ActivityConfig {
  double default_pi_toggle = 0.25;
  double flop_damping = 0.5;   // Q toggle = damping * D toggle + floor
  double flop_floor = 0.02;
  int sweeps = 3;              // fixed-point sweeps across flop boundaries
};

// Propagates toggle rates through the netlist. `pi_toggle` may be empty (all
// primary inputs use the default) or hold one entry per primary input in
// primary_inputs() order.
SwitchingActivity propagate_activity(const Netlist& netlist,
                                     const ActivityConfig& config,
                                     const std::vector<double>& pi_toggle = {});

struct PowerReport {
  double leakage = 0.0;    // mW
  double internal = 0.0;   // mW
  double switching = 0.0;  // mW

  [[nodiscard]] double total() const { return leakage + internal + switching; }
};

PowerReport compute_power(const Netlist& netlist,
                          const SwitchingActivity& activity);

// Per-cell power split used by the Table-I features.
struct CellPower {
  double internal = 0.0;
  double leakage = 0.0;
  double net_switching = 0.0;  // switching power of the cell's output net
};

CellPower compute_cell_power(const Netlist& netlist,
                             const SwitchingActivity& activity, CellId cell);

}  // namespace rlccd
