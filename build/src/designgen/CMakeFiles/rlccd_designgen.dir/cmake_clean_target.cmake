file(REMOVE_RECURSE
  "librlccd_designgen.a"
)
