file(REMOVE_RECURSE
  "CMakeFiles/rlccd_power.dir/power.cpp.o"
  "CMakeFiles/rlccd_power.dir/power.cpp.o.d"
  "librlccd_power.a"
  "librlccd_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlccd_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
