#include "common/fault.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/contracts.h"
#include "common/env.h"
#include "common/log.h"
#include "common/telemetry.h"

namespace rlccd {

FaultInjector& FaultInjector::global() {
  static FaultInjector* instance = []() {
    auto* fi = new FaultInjector();
    std::string spec = env_string("RLCCD_FAULTS", "");
    if (!spec.empty()) {
      Status s = fi->arm_from_spec(spec);
      if (!s.ok()) {
        RLCCD_LOG_ERROR("ignoring RLCCD_FAULTS: %s", s.to_string().c_str());
      } else {
        RLCCD_LOG_WARN("fault injection armed from RLCCD_FAULTS=\"%s\"",
                       spec.c_str());
      }
    }
    return fi;
  }();
  return *instance;
}

void FaultInjector::arm(FaultArm arm) {
  RLCCD_EXPECTS(!arm.point.empty() && arm.hit >= 1 && arm.count >= 1);
  std::lock_guard<std::mutex> lock(mutex_);
  Point* point = nullptr;
  for (Point& p : points_) {
    if (p.name == arm.point) {
      point = &p;
      break;
    }
  }
  if (point == nullptr) {
    points_.push_back(Point{arm.point, 0, {}});
    point = &points_.back();
  }
  point->arms.push_back(std::move(arm));
  any_armed_.store(true, std::memory_order_relaxed);
}

Status FaultInjector::arm_from_spec(std::string_view spec) {
  std::vector<FaultArm> parsed;
  std::size_t i = 0;
  while (i < spec.size()) {
    while (i < spec.size() &&
           (spec[i] == ',' || spec[i] == ';' || spec[i] == ' ')) {
      ++i;
    }
    std::size_t end = i;
    while (end < spec.size() && spec[end] != ',' && spec[end] != ';' &&
           spec[end] != ' ') {
      ++end;
    }
    if (end == i) break;
    std::string token(spec.substr(i, end - i));
    i = end;

    const std::size_t at = token.find('@');
    if (at == std::string::npos || at == 0) {
      return Status::invalid_argument(
          "fault spec token '%s': expected point@hit[:count[:param]]",
          token.c_str());
    }
    FaultArm arm;
    arm.point = token.substr(0, at);
    char* cursor = token.data() + at + 1;
    char* parse_end = nullptr;
    arm.hit = std::strtoull(cursor, &parse_end, 10);
    if (parse_end == cursor || arm.hit == 0) {
      return Status::invalid_argument("fault spec token '%s': bad hit index",
                                      token.c_str());
    }
    if (*parse_end == ':') {
      cursor = parse_end + 1;
      arm.count = std::strtoull(cursor, &parse_end, 10);
      if (parse_end == cursor || arm.count == 0) {
        return Status::invalid_argument("fault spec token '%s': bad count",
                                        token.c_str());
      }
    }
    if (*parse_end == ':') {
      cursor = parse_end + 1;
      arm.param = std::strtod(cursor, &parse_end);
      if (parse_end == cursor) {
        return Status::invalid_argument("fault spec token '%s': bad param",
                                        token.c_str());
      }
    }
    if (*parse_end != '\0') {
      return Status::invalid_argument(
          "fault spec token '%s': trailing garbage '%s'", token.c_str(),
          parse_end);
    }
    parsed.push_back(std::move(arm));
  }
  for (FaultArm& a : parsed) arm(std::move(a));
  return Status();
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  any_armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::should_fire(std::string_view point, double* param) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Point& p : points_) {
    if (p.name != point) continue;
    const std::uint64_t hit = ++p.hits;
    for (const FaultArm& arm : p.arms) {
      if (hit >= arm.hit && hit < arm.hit + arm.count) {
        if (param != nullptr) *param = arm.param;
        MetricsRegistry::global()
            .counter("fault." + p.name)
            .increment();
        RLCCD_LOG_WARN("fault point '%s' fired (hit %llu)", p.name.c_str(),
                       static_cast<unsigned long long>(hit));
        return true;
      }
    }
    return false;
  }
  return false;
}

bool fault_fire(std::string_view point, double* param) {
  FaultInjector& fi = FaultInjector::global();
  if (!fi.any_armed()) return false;
  return fi.should_fire(point, param);
}

void fault_stall_point(std::string_view point) {
  double seconds = 0.0;
  if (fault_fire(point, &seconds) && seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

}  // namespace rlccd
