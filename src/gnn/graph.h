// GNN graph construction.
//
// Message-passing edges follow the netlist transformation of [4] (Lu & Lim,
// ICCAD'22): for every net, the driver cell is connected to each sink cell,
// and edges are symmetric so information flows with and against signal
// direction. Degenerate high-fanout nets (clock/reset) are skipped, as in
// standard netlist-GNN practice. The adjacency is row-normalized so
// spmm(adj, X) realizes the neighborhood *mean* of Eq. 2; the cone matrix
// realizes the fan-in-cone *sum* of Eq. 3.
#pragma once

#include <span>
#include <vector>

#include "nn/sparse.h"
#include "sta/cone.h"

namespace rlccd {

// Row-normalized symmetric cell adjacency [num_cells x num_cells].
SparseOperand build_mean_adjacency(const Netlist& netlist,
                                   std::size_t max_fanout = 64);

// Fan-in-cone sum matrix [num_endpoints x num_cells] from a ConeIndex.
SparseOperand build_cone_matrix(const Netlist& netlist,
                                const ConeIndex& cones);

// Feature-matrix row (owning cell index) of each endpoint pin.
std::vector<std::size_t> endpoint_cell_rows(const Netlist& netlist,
                                            std::span<const PinId> endpoints);

}  // namespace rlccd
