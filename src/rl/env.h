// RL selection environment (paper Fig. 2 / Algorithm 1 lines 5-13).
//
// State: every violating endpoint is valid, selected, or masked. An action
// selects one valid endpoint; all remaining valid endpoints whose fan-in
// cone overlaps the selection by more than the threshold rho are then masked
// (Fig. 3). The episode ends when no endpoint is valid — the agent thereby
// chooses the selection *count* implicitly through its overlap behaviour
// (paper Sec. III-C).
#pragma once

#include <vector>

#include "rl/audit.h"
#include "rl/design_graph.h"

namespace rlccd {

class SelectionEnv {
 public:
  SelectionEnv(const DesignGraph* graph, double overlap_threshold);

  void reset();
  [[nodiscard]] bool done() const { return num_valid_ == 0; }
  [[nodiscard]] std::size_t num_endpoints() const {
    return graph_->num_endpoints();
  }
  // 1 = still selectable.
  [[nodiscard]] const std::vector<char>& valid() const { return valid_; }
  // Selects endpoint `index`; masks overlapping endpoints; returns how many
  // endpoints were masked by this action. When `masked_out` is non-null,
  // every endpoint masked by this action is appended with the cone-overlap
  // ratio that masked it (decision provenance; read-only side channel).
  int step(std::size_t index, std::vector<AuditMaskEvent>* masked_out = nullptr);

  [[nodiscard]] const std::vector<std::size_t>& selected() const {
    return selected_;
  }
  [[nodiscard]] std::vector<PinId> selected_pins() const;

  // Per-cell "RL masked" flags (Table I column 0): owner cells of selected
  // or masked endpoints.
  [[nodiscard]] std::vector<char> cell_mask_flags() const;

 private:
  const DesignGraph* graph_;
  double rho_;
  std::vector<char> valid_;
  std::vector<char> masked_or_selected_;
  std::vector<std::size_t> selected_;
  std::size_t num_valid_ = 0;
};

}  // namespace rlccd
