// rlccd_report — flight-recorder report and run-diff tool.
//
//   rlccd_report <run>                       # text report for one run
//   rlccd_report --diff <base> <candidate>   # compare two runs
//             [--max-runtime-regress PCT]    # default 10 (negative: off)
//             [--max-tns-regress PCT]        # default 2  (negative: off)
//             [--max-speedup-regress PCT]    # default 25 (negative: off)
//             [--json FILE]                  # write machine-readable diff
//
// A <run> is a directory containing metrics.json (from --metrics-json),
// audit.jsonl (from --audit-jsonl) and/or BENCH_*.json files (from the
// bench binaries' --json flag), or a single such file.
//
// Exit codes: 0 = ok, 1 = regression detected (--diff), 2 = usage or
// unreadable input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "report/report.h"

using namespace rlccd;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: rlccd_report <run>\n"
               "       rlccd_report --diff <base> <candidate>\n"
               "                    [--max-runtime-regress PCT] "
               "[--max-tns-regress PCT]\n"
               "                    [--max-speedup-regress PCT] "
               "[--json FILE]\n"
               "a <run> is a directory with metrics.json, audit.jsonl and/or "
               "BENCH_*.json, or one such file\n");
  return 2;
}

bool load_or_complain(const std::string& path, RunReport& report) {
  Status s = load_run(path, report);
  if (!s.ok()) {
    std::fprintf(stderr, "cannot load run %s: %s\n", path.c_str(),
                 s.to_string().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool diff_mode = false;
  DiffThresholds thresholds;
  std::string json_out;
  std::vector<std::string> runs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--diff") {
      diff_mode = true;
    } else if (arg == "--max-runtime-regress" && i + 1 < argc) {
      thresholds.max_runtime_regress_pct = std::atof(argv[++i]);
    } else if (arg == "--max-tns-regress" && i + 1 < argc) {
      thresholds.max_tns_regress_pct = std::atof(argv[++i]);
    } else if (arg == "--max-speedup-regress" && i + 1 < argc) {
      thresholds.max_speedup_regress_pct = std::atof(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage();
    } else {
      runs.push_back(arg);
    }
  }

  if (!diff_mode) {
    if (runs.size() != 1) return usage();
    RunReport report;
    if (!load_or_complain(runs[0], report)) return 2;
    std::fputs(render_text_report(report).c_str(), stdout);
    return 0;
  }

  if (runs.size() != 2) return usage();
  RunReport base, candidate;
  if (!load_or_complain(runs[0], base)) return 2;
  if (!load_or_complain(runs[1], candidate)) return 2;
  ReportDiff diff = diff_runs(base, candidate, thresholds);
  std::fputs(diff.to_text().c_str(), stdout);
  if (!json_out.empty()) {
    const std::string json = diff.to_json();
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 2;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return diff.regressed() ? 1 : 0;
}
