file(REMOVE_RECURSE
  "librlccd_sta.a"
)
