// Figure 6 reproduction: transfer learning on block19.
//
// The paper pre-trains EP-GNN on same-technology designs and shows that a
// fresh encoder/decoder with the pre-trained EP-GNN converges to comparable
// TNS in far fewer iterations than training everything from scratch. We
// pre-train on the other N5 blocks (block1/13 at the bench tier), transfer
// to block19, and print both best-TNS-so-far convergence series.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "common/table.h"

using namespace rlccd;
using namespace rlccd::bench;

int main() {
  set_log_level(LogLevel::Warn);
  print_header("Figure 6: transfer learning on block19 (pre-trained EP-GNN)");
  BenchTier t = tier();

  const std::string gnn_path = "/tmp/rlccd_fig6_gnn.bin";
  // block19 is the largest block (922K cells in the paper); the two full
  // convergence curves run at 0.7x the tier scale to keep this bench's
  // wall-clock in line with the others.
  const double scale = 0.7 * t.scale;

  // Pre-train the EP-GNN on a same-technology donor (block19 is N5).
  for (const char* donor : {"block13"}) {
    const BlockSpec& spec = find_block(donor);
    Design d = generate_design(to_generator_config(spec, scale));
    RlCcdConfig cfg = agent_config(d, t, 7);
    RlCcd agent(&d, cfg);
    agent.run();
    Status s = agent.save_gnn(gnn_path);
    if (!s.ok()) {
      std::fprintf(stderr, "[fig6] cannot save EP-GNN: %s\n",
                   s.to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "[fig6] pre-trained on %s\n", donor);
  }

  Design target = generate_design(
      to_generator_config(find_block("block19"), scale));
  auto train = [&](const std::string& pretrained) {
    RlCcdConfig cfg = agent_config(target, t, 99);
    cfg.train.patience = cfg.train.max_iterations;  // full curve
    cfg.pretrained_gnn = pretrained;
    RlCcd agent(&target, cfg);
    return agent.run();
  };
  RlCcdResult scratch = train("");
  RlCcdResult transfer = train(gnn_path);

  TablePrinter table({"iteration", "scratch best TNS", "transfer best TNS"});
  std::size_t n = std::max(scratch.train.history.size(),
                           transfer.train.history.size());
  for (std::size_t i = 0; i < n; ++i) {
    auto cell = [&](const RlCcdResult& r) -> std::string {
      if (i < r.train.history.size()) {
        return TablePrinter::fmt(r.train.history[i].best_tns, 3);
      }
      return "-";
    };
    table.add_row({std::to_string(i), cell(scratch), cell(transfer)});
  }
  table.print();

  auto iters_to_reach = [](const RlCcdResult& r, double goal) {
    for (std::size_t i = 0; i < r.train.history.size(); ++i) {
      if (r.train.history[i].best_tns >= goal) return i + 1;
    }
    return r.train.history.size() + 1;
  };
  // Iterations each variant needs to reach the scratch run's final quality.
  double goal = scratch.train.best_tns - 1e-9;
  std::printf("\ndefault flow TNS: %.3f\n", scratch.default_flow.final_summary.tns);
  std::printf("scratch : best TNS %.3f in %zu iterations\n",
              scratch.train.best_tns, scratch.train.history.size());
  std::printf("transfer: best TNS %.3f, reached scratch-final quality after "
              "%zu iterations (scratch needed %zu)\n",
              transfer.train.best_tns, iters_to_reach(transfer, goal),
              iters_to_reach(scratch, goal));
  std::remove(gnn_path.c_str());
  return 0;
}
