#include "nn/ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rlccd {
namespace {

TEST(Ops, MatmulValues) {
  Tensor a = Tensor::from_data({1, 2, 3, 4}, 2, 2);
  Tensor b = Tensor::from_data({5, 6, 7, 8}, 2, 2);
  Tensor c = ops::matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Ops, MatmulNonSquare) {
  Tensor a = Tensor::from_data({1, 2, 3}, 1, 3);
  Tensor b = Tensor::from_data({1, 0, 0, 1, 1, 1}, 3, 2);
  Tensor c = ops::matmul(a, b);
  ASSERT_EQ(c.rows(), 1u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_FLOAT_EQ(c.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 5.0f);
}

TEST(Ops, ElementwiseArithmetic) {
  Tensor a = Tensor::from_data({1, -2}, 1, 2);
  Tensor b = Tensor::from_data({3, 4}, 1, 2);
  EXPECT_FLOAT_EQ(ops::add(a, b).at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(ops::sub(a, b).at(0, 1), -6.0f);
  EXPECT_FLOAT_EQ(ops::mul(a, b).at(0, 1), -8.0f);
  EXPECT_FLOAT_EQ(ops::affine(a, 2.0f, 1.0f).at(0, 0), 3.0f);
}

TEST(Ops, AddRowvecBroadcasts) {
  Tensor a = Tensor::from_data({1, 2, 3, 4}, 2, 2);
  Tensor r = Tensor::from_data({10, 20}, 1, 2);
  Tensor c = ops::add_rowvec(a, r);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 24.0f);
}

TEST(Ops, Nonlinearities) {
  Tensor x = Tensor::from_data({0.0f, 100.0f, -100.0f}, 1, 3);
  Tensor s = ops::sigmoid(x);
  EXPECT_NEAR(s.at(0, 0), 0.5f, 1e-6);
  EXPECT_NEAR(s.at(0, 1), 1.0f, 1e-6);
  EXPECT_NEAR(s.at(0, 2), 0.0f, 1e-6);

  Tensor t = ops::tanh_op(Tensor::from_data({0.5f}, 1, 1));
  EXPECT_NEAR(t.item(), std::tanh(0.5f), 1e-6);

  Tensor r = ops::relu(Tensor::from_data({-1.0f, 2.0f}, 1, 2));
  EXPECT_FLOAT_EQ(r.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(r.at(0, 1), 2.0f);
}

TEST(Ops, Reductions) {
  Tensor x = Tensor::from_data({1, 2, 3, 4}, 2, 2);
  EXPECT_FLOAT_EQ(ops::sum(x).item(), 10.0f);
  EXPECT_FLOAT_EQ(ops::mean(x).item(), 2.5f);
}

TEST(Ops, ConcatCols) {
  Tensor a = Tensor::from_data({1, 2}, 1, 2);
  Tensor b = Tensor::from_data({3}, 1, 1);
  Tensor c = ops::concat_cols(a, b);
  ASSERT_EQ(c.cols(), 3u);
  EXPECT_FLOAT_EQ(c.at(0, 2), 3.0f);
}

TEST(Ops, GatherRowsAndPick) {
  Tensor a = Tensor::from_data({1, 2, 3, 4, 5, 6}, 3, 2);
  Tensor g = ops::gather_rows(a, {2, 0});
  ASSERT_EQ(g.rows(), 2u);
  EXPECT_FLOAT_EQ(g.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.at(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(ops::pick(a, 1, 1).item(), 4.0f);
}

TEST(Ops, MaskedLogSoftmaxNormalizesOverValid) {
  Tensor scores = Tensor::from_data({1.0f, 2.0f, 3.0f}, 3, 1);
  std::vector<char> valid = {1, 0, 1};
  Tensor lp = ops::masked_log_softmax(scores, valid);
  // p over {1,3}: exp(1)/(exp(1)+exp(3)), exp(3)/(...)
  double z = std::exp(1.0) + std::exp(3.0);
  EXPECT_NEAR(lp.at(0, 0), std::log(std::exp(1.0) / z), 1e-5);
  EXPECT_NEAR(lp.at(2, 0), std::log(std::exp(3.0) / z), 1e-5);
  EXPECT_LT(lp.at(1, 0), -1e20f);  // masked = -inf surrogate
  // Probabilities of valid entries sum to 1.
  EXPECT_NEAR(std::exp(lp.at(0, 0)) + std::exp(lp.at(2, 0)), 1.0, 1e-6);
}

TEST(Ops, MaskedLogSoftmaxStableForLargeScores) {
  Tensor scores = Tensor::from_data({1000.0f, 999.0f}, 2, 1);
  std::vector<char> valid = {1, 1};
  Tensor lp = ops::masked_log_softmax(scores, valid);
  EXPECT_TRUE(std::isfinite(lp.at(0, 0)));
  // Single-precision at |score| ~ 1e3 keeps ~4 digits after the point.
  EXPECT_NEAR(std::exp(lp.at(0, 0)) + std::exp(lp.at(1, 0)), 1.0, 1e-3);
}

TEST(Ops, ScaleByScalar) {
  Tensor a = Tensor::from_data({1, 2}, 1, 2);
  Tensor s = Tensor::scalar(3.0f);
  Tensor c = ops::scale_by_scalar(a, s);
  EXPECT_FLOAT_EQ(c.at(0, 1), 6.0f);
}

TEST(Ops, SpmmMatchesDense) {
  // A = [[0,1],[2,0]], X = [[1,2],[3,4]] -> AX = [[3,4],[2,4]]
  SparseOperand a(SparseMatrix::from_triplets(
      2, 2, {{0, 1, 1.0f}, {1, 0, 2.0f}}));
  Tensor x = Tensor::from_data({1, 2, 3, 4}, 2, 2);
  Tensor y = ops::spmm(a, x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 4.0f);
}

}  // namespace
}  // namespace rlccd
