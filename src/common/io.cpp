#include "common/io.h"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#ifdef _WIN32
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/fault.h"

namespace rlccd {

namespace {

void fsync_file(std::FILE* f) {
#ifdef _WIN32
  _commit(_fileno(f));
#else
  ::fsync(fileno(f));
#endif
}

// Durability step 2: after rename, the new directory entry itself must be
// fsynced or a power loss can forget the rename and the file "vanishes"
// even though its bytes were synced. No-op on Windows (rename goes through
// the journalling layer there).
Status fsync_parent_dir(const std::string& path) {
  if (fault_fire("io_fsync_dir")) {
    return Status::io_error("injected I/O fault syncing directory of %s",
                            path.c_str());
  }
#ifndef _WIN32
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::io_error("cannot open directory %s for fsync: %s",
                            dir.c_str(), std::strerror(errno));
  }
  const bool ok = ::fsync(fd) == 0;
  const int saved_errno = errno;
  ::close(fd);
  if (!ok) {
    return Status::io_error("fsync %s: %s", dir.c_str(),
                            std::strerror(saved_errno));
  }
#endif
  return Status();
}

}  // namespace

Status atomic_write_file(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::io_error("cannot open %s for writing: %s", tmp.c_str(),
                            std::strerror(errno));
  }
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  if (ok && fault_fire("io_write_tmp")) {
    errno = EIO;
    ok = false;
  }
  if (ok) ok = std::fflush(f) == 0;
  if (ok) fsync_file(f);
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::io_error("short write to %s: %s", tmp.c_str(),
                            std::strerror(errno));
  }
  if (fault_fire("io_rename") || std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status s = Status::io_error("cannot rename %s to %s: %s", tmp.c_str(),
                                path.c_str(), std::strerror(errno));
    std::remove(tmp.c_str());
    return s;
  }
  // The rename already happened; a dir-fsync failure means the new name may
  // not survive a power loss, which callers must treat as a failed write
  // even though the file is visible right now.
  return fsync_parent_dir(path);
}

Status read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::io_error("cannot open %s: %s", path.c_str(),
                            std::strerror(errno));
  }
  out.clear();
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::io_error("read error on %s: %s", path.c_str(),
                            std::strerror(errno));
  }
  return Status();
}

Status make_dirs(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return Status::io_error("cannot create directory %s: %s", path.c_str(),
                            ec.message().c_str());
  }
  if (!std::filesystem::is_directory(path, ec)) {
    return Status::io_error("%s exists but is not a directory", path.c_str());
  }
  return Status();
}

std::uint32_t crc32(std::string_view bytes) {
  static const auto table = []() {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : bytes) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace rlccd
