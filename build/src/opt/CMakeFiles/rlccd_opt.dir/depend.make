# Empty dependencies file for rlccd_opt.
# This may be replaced when dependencies are built.
