// Transfer-learning workflow (paper Sec. IV-B) at unit-test scale: train on
// a donor design, reuse the EP-GNN on a different design, and check the
// mechanics (weights transferred, training still valid and deterministic).
#include <gtest/gtest.h>

#include <cstdio>

#include "core/rlccd.h"

namespace rlccd {
namespace {

Design make_design(std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.target_cells = 400;
  cfg.seed = seed;
  cfg.clock_tightness = 0.75;
  return generate_design(cfg);
}

RlCcdConfig tiny_config(const Design& d) {
  RlCcdConfig cfg = RlCcdConfig::for_design(d);
  cfg.train.workers = 2;
  cfg.train.max_iterations = 2;
  cfg.train.min_iterations = 1;
  return cfg;
}

TEST(Transfer, DonorToStudentWorkflow) {
  std::string path = std::string(::testing::TempDir()) + "/transfer_gnn.bin";

  // Donor training mutates the EP-GNN away from its initialization.
  Design donor = make_design(171);
  RlCcd teacher(&donor, tiny_config(donor));
  std::vector<float> init_sample;
  {
    Tensor w0 = teacher.policy().gnn_parameters()[0];
    init_sample.assign(w0.data(), w0.data() + w0.size());
  }
  teacher.run();
  ASSERT_TRUE(teacher.save_gnn(path).ok());
  {
    Tensor w0 = teacher.policy().gnn_parameters()[0];
    bool moved = false;
    for (std::size_t i = 0; i < w0.size(); ++i) {
      if (w0.data()[i] != init_sample[i]) moved = true;
    }
    EXPECT_TRUE(moved) << "training must update EP-GNN weights";
  }

  // Student on a different design starts from the donor's EP-GNN.
  Design student_design = make_design(173);
  RlCcdConfig cfg = tiny_config(student_design);
  cfg.pretrained_gnn = path;
  RlCcd student(&student_design, cfg);
  {
    std::vector<Tensor> a = teacher.policy().gnn_parameters();
    std::vector<Tensor> b = student.policy().gnn_parameters();
    for (std::size_t p = 0; p < a.size(); ++p) {
      for (std::size_t i = 0; i < a[p].size(); ++i) {
        ASSERT_FLOAT_EQ(b[p].data()[i], a[p].data()[i]);
      }
    }
  }
  RlCcdResult r = student.run();
  EXPECT_GE(r.rl_flow.final_summary.tns, r.default_flow.final_summary.tns - 1e-9);
  std::remove(path.c_str());
}

TEST(Transfer, TransferredTrainingIsDeterministic) {
  std::string path = std::string(::testing::TempDir()) + "/det_gnn.bin";
  Design donor = make_design(175);
  RlCcd teacher(&donor, tiny_config(donor));
  teacher.run();
  ASSERT_TRUE(teacher.save_gnn(path).ok());

  auto run_student = [&]() {
    Design d = make_design(177);
    RlCcdConfig cfg = tiny_config(d);
    cfg.pretrained_gnn = path;
    RlCcd agent(&d, cfg);
    return agent.run();
  };
  RlCcdResult a = run_student();
  RlCcdResult b = run_student();
  EXPECT_DOUBLE_EQ(a.rl_flow.final_summary.tns, b.rl_flow.final_summary.tns);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rlccd
