file(REMOVE_RECURSE
  "CMakeFiles/rlccd_nn.dir/modules.cpp.o"
  "CMakeFiles/rlccd_nn.dir/modules.cpp.o.d"
  "CMakeFiles/rlccd_nn.dir/ops.cpp.o"
  "CMakeFiles/rlccd_nn.dir/ops.cpp.o.d"
  "CMakeFiles/rlccd_nn.dir/optim.cpp.o"
  "CMakeFiles/rlccd_nn.dir/optim.cpp.o.d"
  "CMakeFiles/rlccd_nn.dir/serialize.cpp.o"
  "CMakeFiles/rlccd_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/rlccd_nn.dir/sparse.cpp.o"
  "CMakeFiles/rlccd_nn.dir/sparse.cpp.o.d"
  "CMakeFiles/rlccd_nn.dir/tensor.cpp.o"
  "CMakeFiles/rlccd_nn.dir/tensor.cpp.o.d"
  "librlccd_nn.a"
  "librlccd_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlccd_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
