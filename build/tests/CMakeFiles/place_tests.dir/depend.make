# Empty dependencies file for place_tests.
# This may be replaced when dependencies are built.
