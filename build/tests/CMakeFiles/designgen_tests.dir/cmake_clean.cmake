file(REMOVE_RECURSE
  "CMakeFiles/designgen_tests.dir/designgen/blocks_sweep_test.cpp.o"
  "CMakeFiles/designgen_tests.dir/designgen/blocks_sweep_test.cpp.o.d"
  "CMakeFiles/designgen_tests.dir/designgen/blocks_test.cpp.o"
  "CMakeFiles/designgen_tests.dir/designgen/blocks_test.cpp.o.d"
  "CMakeFiles/designgen_tests.dir/designgen/generator_test.cpp.o"
  "CMakeFiles/designgen_tests.dir/designgen/generator_test.cpp.o.d"
  "designgen_tests"
  "designgen_tests.pdb"
  "designgen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/designgen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
