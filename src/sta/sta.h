// Graph-based static timing analysis over the netlist.
//
// Full min/max analysis with slew propagation:
//   * forward pass — arrival times (max for setup, min for hold) and output
//     transitions, launched from primary inputs and flop CK->Q arcs,
//   * backward pass — setup required times, so slack is defined at every pin
//     (slack at a flop's Q pin = worst slack among paths *launched* by that
//     flop, which is exactly what the useful-skew engine balances against the
//     flop's capture-side endpoint slack).
//
// Endpoints are flop D pins (setup/hold checked against the same flop's
// adjusted clock arrival) and primary-output pins. Endpoint *margins*
// (set_margin) tighten an endpoint's required time; this is the mechanism
// the paper uses to make the useful-skew engine "over-fix" the RL-selected
// endpoints.
//
// Storage is structure-of-arrays (TimingStore): one flat array per timing
// field, indexed by pin. Callers go through accessors (timing()/slack()/
// per-field getters) and never see the layout.
//
// Two evaluation modes:
//   * run()    — full recompute of every pin (always correct, O(pins)).
//     The full passes process the levelized graph as *wavefronts*: within
//     one level every cell reads only prior-level (forward) or later-level
//     (backward) values and writes only its own pins, so the per-level
//     parallel-for over StaConfig::num_threads threads is race-free and
//     bit-identical to the serial sweep at any thread count.
//   * update() — incremental: consumes the netlist's mutation journal, the
//     clock schedule's dirty-flop list and pending margin edits, then
//     re-propagates only the affected cones level-by-level over the
//     levelized TimingGraph, stopping as soon as recomputed values stop
//     changing. Produces bit-identical results to run() — recomputed pins
//     see identical inputs, so untouched cones keep identical values.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/ids.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "netlist/netlist.h"
#include "sta/clock_schedule.h"
#include "sta/timing_graph.h"
#include "sta/timing_store.h"

namespace rlccd {

struct StaConfig {
  double input_delay = 0.0;    // arrival at primary inputs (ns)
  double output_delay = 0.0;   // external margin at primary outputs (ns)
  double clock_slew = 0.02;    // transition at flop CK pins (ns)
  // When false, update() always falls back to a full run() — the
  // pre-incremental behavior, kept selectable for benchmarking.
  bool incremental = true;
  // Worker threads for the full-pass wavefront kernels (1 = serial, the
  // incremental frontier is always serial). Results are bit-identical
  // across thread counts.
  int num_threads = 1;
};

struct TimingSummary {
  double wns = 0.0;       // worst negative slack (0 when all met)
  double tns = 0.0;       // total negative slack (sum of negative endpoint slacks)
  std::size_t nve = 0;    // number of violating endpoints
  std::size_t num_endpoints = 0;
  double worst_hold_slack = 0.0;
};

// Work counters; pin_updates is the cost metric the incremental engine
// minimizes (a full run costs 2 * num_pins).
struct StaStats {
  std::uint64_t full_runs = 0;
  std::uint64_t incremental_updates = 0;
  std::uint64_t forward_pin_updates = 0;
  std::uint64_t backward_pin_updates = 0;
  std::uint64_t relevel_batches = 0;
  // Level batches swept by the full passes (both directions); the unit of
  // wavefront parallelism.
  std::uint64_t wavefronts = 0;
  [[nodiscard]] std::uint64_t pin_updates() const {
    return forward_pin_updates + backward_pin_updates;
  }
};

class Sta {
 public:
  Sta(const Netlist* netlist, StaConfig config, double clock_period);

  // Non-owning view of the analyzed netlist.
  [[nodiscard]] const Netlist& netlist() const { return *netlist_; }

  [[nodiscard]] ClockSchedule& clock() { return clock_; }
  [[nodiscard]] const ClockSchedule& clock() const { return clock_; }

  // Margin edits are tracked so update() can reseed only the affected
  // endpoints' required times.
  void set_margin(PinId endpoint, double margin);
  void clear_margins();
  [[nodiscard]] const EndpointMargins& margins() const { return margins_; }

  // Recomputes all timing from scratch (rebuilding the topology if the
  // netlist changed structurally) and drains all pending dirt.
  void run();

  // Incremental recompute: propagates only the dirty frontier implied by
  // journaled netlist mutations, clock-schedule edits and margin changes.
  // Equivalent to run(); falls back to it on the first call, when
  // incremental mode is disabled, or when most of the design is dirty.
  void update();

  // -- results (valid after run()/update()) ----------------------------------
  // Materialized per-pin view; prefer the per-field accessors below in hot
  // loops that need only one field.
  [[nodiscard]] PinTiming timing(PinId pin) const {
    RLCCD_EXPECTS(pin.index() < store_.size());
    return store_.get(pin.index());
  }
  [[nodiscard]] double arrival_max(PinId pin) const {
    RLCCD_EXPECTS(pin.index() < store_.size());
    return store_.arrival_max(pin.index());
  }
  [[nodiscard]] double arrival_min(PinId pin) const {
    RLCCD_EXPECTS(pin.index() < store_.size());
    return store_.arrival_min(pin.index());
  }
  [[nodiscard]] double pin_slew(PinId pin) const {
    RLCCD_EXPECTS(pin.index() < store_.size());
    return store_.slew(pin.index());
  }
  [[nodiscard]] double required(PinId pin) const {
    RLCCD_EXPECTS(pin.index() < store_.size());
    return store_.required(pin.index());
  }
  [[nodiscard]] bool reachable(PinId pin) const {
    RLCCD_EXPECTS(pin.index() < store_.size());
    return store_.reachable(pin.index());
  }
  // Setup slack at a pin: required - arrival_max.
  [[nodiscard]] double slack(PinId pin) const;
  // Worst setup slack among all paths through a cell (slack at output pin,
  // or at the endpoint pin for flops/output ports).
  [[nodiscard]] double cell_worst_slack(CellId cell) const;

  // All timing endpoints, in stable (pin-index) order.
  [[nodiscard]] std::span<const PinId> endpoints() const {
    return graph_.endpoints();
  }
  [[nodiscard]] bool is_endpoint(PinId pin) const {
    return graph_.is_endpoint(pin);
  }

  [[nodiscard]] double endpoint_slack(PinId endpoint) const;
  [[nodiscard]] double endpoint_hold_slack(PinId endpoint) const;
  // Bulk form: slack per pin in `endpoints` order; non-endpoints get +inf
  // (callers passing a prioritized list need not pre-filter). The
  // out-parameter overload reuses the caller's buffer (cleared first) —
  // the opt passes call this every flow pass.
  void endpoint_slacks(std::span<const PinId> endpoints,
                       std::vector<double>& out) const;
  [[nodiscard]] std::vector<double> endpoint_slacks(
      std::span<const PinId> endpoints) const;
  // Endpoints with slack < 0, in stable order; the out-parameter overload
  // reuses the caller's buffer (cleared first).
  void endpoint_violations(std::vector<PinId>& out) const;
  [[nodiscard]] std::vector<PinId> endpoint_violations() const;

  [[nodiscard]] TimingSummary summary() const;

  // Wire arc delay from a net's driver to a specific sink pin (ns).
  [[nodiscard]] double wire_delay(PinId sink) const;

  [[nodiscard]] const StaStats& stats() const { return stats_; }
  void reset_stats() {
    stats_ = StaStats{};
    flushed_stats_ = StaStats{};
  }

 private:
  // -- full passes (wavefront kernels) ---------------------------------------
  void forward_pass();
  void backward_pass();
  // Forward-propagates one cell's pins: input pins pulled from their
  // driving nets, output pin from the worst input arc. Writes only `cell`'s
  // own pins; reads only lower-level values. Safe to run concurrently for
  // all cells of one wavefront.
  void forward_cell_kernel(CellId cell);
  // Backward analog: output required pulled from the net's sinks, input
  // requireds derived through the cell arcs.
  void backward_cell_kernel(CellId cell);
  // Lazily built pool sized to config_.num_threads.
  ThreadPool& pool();

  // -- incremental machinery --------------------------------------------------
  void collect_seeds(std::span<const Mutation> pending);
  void add_seed(CellId cell);
  void forward_incremental();
  void backward_incremental(std::span<const PinId> new_endpoints);
  // Change classification for a recomputed forward pin. Arrival-only
  // changes shift slacks but leave every required time intact (requireds
  // depend on slews and downstream requireds, never on arrivals), so only
  // kPinElec changes seed the backward pass.
  static constexpr int kPinArrival = 1;
  static constexpr int kPinElec = 2;  // slew or reachability changed
  // Recomputes an input pin's arrival/slew from its driving net; preserves
  // the pin's required time. Returns a bitmask of kPin* changes (0 = none).
  int recompute_sink_pin(PinId sink);
  // Recomputes launch (and endpoint-input) pins of a port/flop seed.
  void recompute_source_forward(CellId cell);
  void recompute_comb_forward(CellId cell);
  void propagate_output_change(const Cell& cell);
  void recompute_comb_backward(CellId cell);
  // Re-pulls the required time of a startpoint's output pin (flop Q / PI).
  void repull_output_required(CellId cell);
  // Routes a changed-required sink pin to its net's driver cell.
  void push_required_source(PinId sink);
  void seed_backward_cell(CellId cell);
  // Queues a combinational cell for the forward sweep. `pull` forces a
  // re-pull of all its input pins (needed for seeds, whose wire delays or
  // loads changed); frontier cells reached through a changed driver have
  // their affected inputs refreshed by propagate_output_change already.
  void enqueue(CellId cell, bool pull);
  void mark_forward_changed(CellId cell);
  // Reseeds one endpoint's required time; propagates upstream on change.
  void reseed_endpoint(PinId endpoint, bool force);

  [[nodiscard]] double clock_arrival(CellId flop) const {
    return clock_.adjustment(flop);
  }
  [[nodiscard]] double endpoint_required(PinId endpoint) const;
  [[nodiscard]] double pull_from_sinks_value(PinId driver_pin) const;

  const Netlist* netlist_;
  StaConfig config_;
  ClockSchedule clock_;
  EndpointMargins margins_;

  TimingGraph graph_;
  TimingStore store_;  // SoA timing fields, indexed by pin
  bool has_run_ = false;
  std::uint64_t journal_cursor_ = 0;
  std::vector<PinId> margin_dirty_;
  std::unique_ptr<ThreadPool> pool_;

  StaStats stats_;
  // Registry mirror: per-instance stats_ deltas are flushed onto the
  // process-wide "sta.*" counters after every run()/update(), keeping the
  // per-pin hot loops free of atomics while the registry (and any active
  // TelemetryScope) still sees every unit of timing work.
  StaStats flushed_stats_;
  MetricsCounter* ctr_full_runs_;
  MetricsCounter* ctr_incremental_updates_;
  MetricsCounter* ctr_forward_pins_;
  MetricsCounter* ctr_backward_pins_;
  MetricsCounter* ctr_relevel_batches_;
  MetricsCounter* ctr_wavefronts_;
  MetricsHistogram* hist_update_pins_;
  void flush_stats_to_registry();

  // Frontier scratch, reused across updates.
  std::vector<std::vector<CellId>> buckets_;  // by level
  std::vector<std::uint32_t> enq_stamp_;      // per cell: queued this phase
  std::vector<std::uint32_t> pull_stamp_;     // per cell: re-pull all inputs
  std::vector<std::uint32_t> chg_stamp_;      // per cell: backward-seed dedup
  std::vector<std::uint32_t> seen_stamp_;     // per cell: seed/source dedup
  std::uint32_t epoch_ = 0;
  std::uint32_t enq_epoch_ = 0;
  std::uint32_t seen_epoch_ = 0;
  std::vector<CellId> seeds_;
  std::vector<CellId> fchanged_;  // cells with an electrical input change
  std::vector<CellId> final_sources_;
};

}  // namespace rlccd
