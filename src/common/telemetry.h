// Process-wide telemetry: the one sanctioned way work counters, timing
// breakdowns and progress stream out of the library.
//
// Three cooperating pieces:
//
//   * MetricsRegistry — named monotonic counters, level gauges and
//     histograms with O(1) lock-free updates (a relaxed atomic add/store).
//     Registration takes a short-lived mutex and debug-asserts the name
//     against the central manifest (common/metric_names.h); hot paths cache
//     the returned reference, which is stable for the process lifetime
//     (reset() zeroes values, never moves objects).
//
//   * ScopedSpan / RLCCD_SPAN — RAII wall-clock spans with thread-local
//     nesting. Closed spans aggregate by name into a tree ("flow" >
//     "data_round_0" > "sizing" > "sta_update"); when the outermost span of
//     a thread closes, the tree merges into the registry's global span
//     aggregate (batched; snapshot() and thread exit drain the remainder).
//     A TelemetryScope additionally captures, per thread, the
//     spans and counter deltas recorded while it is alive — this is how
//     run_placement_flow attaches an exact per-flow snapshot even while
//     eight trainer workers run flows concurrently.
//
//   * ProgressObserver — a callback interface FlowConfig/TrainConfig accept
//     so CLIs and tests stream per-pass / per-iteration events instead of
//     polling. Events carry a small flat metric payload (name/value pairs)
//     to keep this header dependency-free; callbacks fire on whichever
//     thread runs the instrumented code.
//
// Export: JSON (nested span trees, counters, gauges, histograms with
// p50/p95/p99), CSV, and Prometheus text exposition, from either the global
// registry or a per-flow TelemetrySnapshot. Snapshots are also *mergeable*
// (TelemetrySnapshot::merge, MetricsRegistry::merge_delta): forked workers
// ship compact deltas and the parent folds them into its own registry —
// counter/histogram merges are commutative, so arrival order cannot change
// the merged result (gauges are levels and take the incoming value).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rlccd {

// -- counters -----------------------------------------------------------------

class MetricsCounter {
 public:
  explicit MetricsCounter(std::string name) : name_(std::move(name)) {}
  MetricsCounter(const MetricsCounter&) = delete;
  MetricsCounter& operator=(const MetricsCounter&) = delete;

  // Lock-free; also feeds the calling thread's active TelemetryScope chain.
  void add(std::uint64_t n);
  void increment() { add(1); }

  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

// -- gauges -------------------------------------------------------------------

// A level, not a rate: queue depth, in-flight jobs, resident cache bytes.
// Unlike counters, gauges move both ways and merging takes the incoming
// value (the child's latest level) rather than summing.
class MetricsGauge {
 public:
  explicit MetricsGauge(std::string name) : name_(std::move(name)) {}
  MetricsGauge(const MetricsGauge&) = delete;
  MetricsGauge& operator=(const MetricsGauge&) = delete;

  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  std::string name_;
  std::atomic<std::int64_t> value_{0};
};

// -- histograms ---------------------------------------------------------------

// Lock-free histogram over positive values (durations in seconds, batch
// sizes): power-of-two buckets plus count/sum/min/max.
class MetricsHistogram {
 public:
  // Bucket b counts values in [2^(b - kBias - 1), 2^(b - kBias)).
  static constexpr int kNumBuckets = 80;
  static constexpr int kBias = 40;

  explicit MetricsHistogram(std::string name) : name_(std::move(name)) {}
  MetricsHistogram(const MetricsHistogram&) = delete;
  MetricsHistogram& operator=(const MetricsHistogram&) = delete;

  // Lock-free; also feeds the calling thread's active TelemetryScope chain.
  void record(double value);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // undefined (0) when count == 0
    double max = 0.0;
    // (power-of-two exponent, count) for each non-empty bucket; a value v in
    // [2^(e-1), 2^e) lands in the pair with exponent e.
    std::vector<std::pair<int, std::uint64_t>> buckets;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    // Folds one recorded value in (per-scope capture uses the same bucket
    // boundaries as the global histogram).
    void merge_value(double value, int exponent);
    // Folds another snapshot in: counts/sums/buckets add, min/max widen.
    // Commutative and associative, so merge order cannot change the result.
    void merge(const Snapshot& other);
    // Quantile estimate from the log2 buckets: finds the bucket holding the
    // q-th value and interpolates linearly inside its [2^(e-1), 2^e) range,
    // clamped to the exact [min, max]. q in [0, 1]; 0 when count == 0.
    [[nodiscard]] double quantile(double q) const;
  };
  [[nodiscard]] Snapshot snapshot() const;
  // Folds a snapshot delta into the live histogram (atomic adds; min/max
  // widen). How a parent process applies a forked worker's histogram delta.
  void merge_snapshot(const Snapshot& delta);
  [[nodiscard]] const std::string& name() const { return name_; }

  // Bucket index in [0, kNumBuckets) for a value; the snapshot exponent is
  // `index - kBias`.
  [[nodiscard]] static int bucket_index(double value);

 private:
  friend class MetricsRegistry;
  static constexpr double kMinInit = 1e300;   // sentinel until first record
  static constexpr double kMaxInit = -1e300;
  std::string name_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{kMinInit};  // valid only when count_ > 0
  std::atomic<double> max_{kMaxInit};
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

// -- spans --------------------------------------------------------------------

// Aggregated span tree node. `exclusive_sec` is the wall-clock spent in the
// span itself, outside any recorded child span.
struct SpanNode {
  std::string name;
  std::uint64_t count = 0;
  double total_sec = 0.0;
  std::vector<SpanNode> children;

  [[nodiscard]] double child_sec() const;
  [[nodiscard]] double exclusive_sec() const { return total_sec - child_sec(); }
  // Find-or-add a direct child by name.
  SpanNode& child(std::string_view child_name);
  [[nodiscard]] const SpanNode* find_child(std::string_view child_name) const;
  // Descend along a '/'-separated path ("flow/useful_skew").
  [[nodiscard]] const SpanNode* find(std::string_view path) const;
  void merge(const SpanNode& other);
};

// RAII span. Nesting is per thread; the name is copied on first use and
// aggregated by (parent path, name) thereafter.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  double start_sec_;  // steady-clock seconds
};

#define RLCCD_SPAN_CONCAT2(a, b) a##b
#define RLCCD_SPAN_CONCAT(a, b) RLCCD_SPAN_CONCAT2(a, b)
#define RLCCD_SPAN(name) \
  ::rlccd::ScopedSpan RLCCD_SPAN_CONCAT(rlccd_span_, __LINE__)(name)

// -- snapshots ----------------------------------------------------------------

// A self-contained copy of the spans, counter deltas and histogram deltas
// captured by a TelemetryScope (or of the whole registry). Plain data; safe
// to store in results and copy across threads.
struct TelemetrySnapshot {
  SpanNode spans;  // synthetic root (empty name); children are top-level spans
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, std::int64_t>> gauges;     // name-sorted
  std::vector<std::pair<std::string, MetricsHistogram::Snapshot>>
      histograms;  // name-sorted

  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] std::int64_t gauge(std::string_view name) const;
  [[nodiscard]] const MetricsHistogram::Snapshot* histogram(
      std::string_view name) const;
  [[nodiscard]] const SpanNode* find_span(std::string_view path) const {
    return spans.find(path);
  }

  // Folds `other` in: counters and histogram contents add, span trees merge
  // by path, gauges take the incoming level. Counter/histogram/span merging
  // is commutative and associative — N deltas merge to the same snapshot in
  // any arrival order.
  void merge(const TelemetrySnapshot& other);

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_csv() const;
  // Prometheus text exposition: counters as `rlccd_<name>` counter
  // families, gauges as gauges, histograms as summaries with
  // quantile="0.5|0.95|0.99" plus _sum/_count, spans as
  // rlccd_span_seconds_total / rlccd_span_count_total with a path label.
  // Dots and other non-[a-zA-Z0-9_] characters sanitize to '_'.
  [[nodiscard]] std::string to_prometheus() const;
};

// Captures spans closed and counter deltas added on the *current thread*
// while alive. Scopes nest (inner deltas also reach outer scopes). Must be
// created and destroyed on the same thread.
class TelemetryScope {
 public:
  TelemetryScope();
  ~TelemetryScope();
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

  [[nodiscard]] TelemetrySnapshot snapshot() const;

 private:
  friend class MetricsCounter;
  friend class MetricsHistogram;
  friend class ScopedSpan;
  void record_span(std::span<const std::string_view> path, double sec);
  void record_counter(const MetricsCounter* counter, std::uint64_t n);
  void record_histogram(const MetricsHistogram* hist, double value,
                        int exponent);

  TelemetryScope* parent_;
  std::size_t base_index_;  // span-stack depth at construction
  SpanNode spans_;
  std::vector<std::pair<const MetricsCounter*, std::uint64_t>> counters_;
  std::vector<std::pair<const MetricsHistogram*, MetricsHistogram::Snapshot>>
      histograms_;
};

// -- registry -----------------------------------------------------------------

class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  // Find-or-register. Returned references are stable for the process
  // lifetime; hot paths should cache them. Registration (first use of a
  // name) debug-asserts the name against the common/metric_names.h
  // manifest, so a typo'd metric dies in debug builds instead of silently
  // registering a fresh always-zero series.
  MetricsCounter& counter(std::string_view name);
  MetricsGauge& gauge(std::string_view name);
  MetricsHistogram& histogram(std::string_view name);

  // Merges the calling thread's batched outermost-span closes into the
  // global aggregate. snapshot() calls it; other threads drain when their
  // own batch fills or at thread exit. No-op while spans are open.
  static void flush_thread_spans();

  // Counters, histogram snapshots and the global span aggregate. Drains the
  // calling thread's pending spans first.
  [[nodiscard]] TelemetrySnapshot snapshot() const;
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_prometheus() const;
  bool write_json(const std::string& path) const;
  bool write_csv(const std::string& path) const;
  bool write_prometheus(const std::string& path) const;

  // Folds a worker's telemetry delta into the live registry: counters add,
  // histograms merge (atomic), span trees merge by path, gauges take the
  // incoming level. The parent-side half of the cross-process observability
  // plane (children ship deltas; see common/telemetry_wire.h).
  void merge_delta(const TelemetrySnapshot& delta);

  // Zeroes every counter/histogram and clears the span aggregate. Object
  // addresses survive (cached references stay valid). Test helper; not
  // meant to run concurrently with recording threads.
  void reset();

  // Internal plumbing for the span machinery (thread trees merging in):
  // takes the span lock; not meant for direct use.
  void merge_spans(const SpanNode& root);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<MetricsCounter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<MetricsGauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<MetricsHistogram>, std::less<>>
      histograms_;
  mutable std::mutex span_mutex_;
  SpanNode spans_;
};

// -- progress events ----------------------------------------------------------

struct ProgressMetric {
  std::string_view name;
  double value = 0.0;
};

struct ProgressEvent {
  std::string_view phase;  // "flow" | "train" | ...
  std::string_view step;   // "useful_skew", "iteration", ...
  int index = -1;          // data-round / iteration index; -1 when n/a
  double seconds = 0.0;    // wall-clock of the step (0 when n/a)
  std::span<const ProgressMetric> metrics;

  [[nodiscard]] double metric(std::string_view name,
                              double fallback = 0.0) const;
};

// Implementations must tolerate being called from whichever thread runs the
// instrumented code (trainer iteration events fire on the training thread;
// flow step events fire on the thread running that flow).
class ProgressObserver {
 public:
  virtual ~ProgressObserver() = default;
  virtual void on_event(const ProgressEvent& event) = 0;
};

}  // namespace rlccd
