// Structure-of-arrays timing storage.
//
// The STA data plane keeps one flat array per timing field instead of an
// array of per-pin structs: the wavefront kernels sweep a level's pins
// touching only the fields they need (arrival/slew forward, required
// backward), so each cache line carries nothing but useful data and the
// contiguous per-field loops are written to autovectorize. The layout is
// also the prerequisite for multi-corner analysis (per-corner arrival
// arrays sharing one topology).
//
// Consumers never see the layout: Sta exposes per-field accessors plus a
// materialized PinTiming view for callers that want the whole record.
#pragma once

#include <cstdint>
#include <vector>

#include "common/contracts.h"
#include "common/ids.h"

namespace rlccd {

// Materialized per-pin view (the pre-SoA struct, kept as the value type
// returned by Sta::timing()).
struct PinTiming {
  double arrival_max = 0.0;
  double arrival_min = 0.0;
  double slew = 0.0;           // worst (max) transition at the pin
  double required = 0.0;       // setup required time (max analysis)
  bool reachable = false;      // on a timed path from a startpoint
};

class TimingStore {
 public:
  [[nodiscard]] std::size_t size() const { return arrival_max_.size(); }

  // Resets every pin to the default-constructed forward state (required is
  // reseeded by the backward pass).
  void assign(std::size_t n) {
    arrival_max_.assign(n, 0.0);
    arrival_min_.assign(n, 0.0);
    slew_.assign(n, 0.0);
    required_.assign(n, 0.0);
    reachable_.assign(n, 0);
  }

  // Grows to n pins, default-initializing the new tail; existing values
  // are preserved (incremental updates after structural edits).
  void resize(std::size_t n) {
    arrival_max_.resize(n, 0.0);
    arrival_min_.resize(n, 0.0);
    slew_.resize(n, 0.0);
    required_.resize(n, 0.0);
    reachable_.resize(n, 0);
  }

  [[nodiscard]] double& arrival_max(std::size_t i) { return arrival_max_[i]; }
  [[nodiscard]] double arrival_max(std::size_t i) const {
    return arrival_max_[i];
  }
  [[nodiscard]] double& arrival_min(std::size_t i) { return arrival_min_[i]; }
  [[nodiscard]] double arrival_min(std::size_t i) const {
    return arrival_min_[i];
  }
  [[nodiscard]] double& slew(std::size_t i) { return slew_[i]; }
  [[nodiscard]] double slew(std::size_t i) const { return slew_[i]; }
  [[nodiscard]] double& required(std::size_t i) { return required_[i]; }
  [[nodiscard]] double required(std::size_t i) const { return required_[i]; }
  [[nodiscard]] bool reachable(std::size_t i) const {
    return reachable_[i] != 0;
  }
  void set_reachable(std::size_t i, bool r) {
    reachable_[i] = static_cast<std::uint8_t>(r);
  }

  [[nodiscard]] PinTiming get(std::size_t i) const {
    RLCCD_EXPECTS(i < size());
    return {arrival_max_[i], arrival_min_[i], slew_[i], required_[i],
            reachable_[i] != 0};
  }
  void put(std::size_t i, const PinTiming& t) {
    arrival_max_[i] = t.arrival_max;
    arrival_min_[i] = t.arrival_min;
    slew_[i] = t.slew;
    required_[i] = t.required;
    reachable_[i] = static_cast<std::uint8_t>(t.reachable);
  }
  // Stores the forward fields only, preserving the pin's required time.
  void put_forward(std::size_t i, const PinTiming& t) {
    arrival_max_[i] = t.arrival_max;
    arrival_min_[i] = t.arrival_min;
    slew_[i] = t.slew;
    reachable_[i] = static_cast<std::uint8_t>(t.reachable);
  }
  [[nodiscard]] bool forward_equal(std::size_t i, const PinTiming& t) const {
    // Exact comparison: recomputing a pin from unchanged inputs reproduces
    // identical arithmetic, so incremental frontiers die out precisely
    // where timing is genuinely unaffected — no epsilon, no drift.
    return arrival_max_[i] == t.arrival_max &&
           arrival_min_[i] == t.arrival_min && slew_[i] == t.slew &&
           (reachable_[i] != 0) == t.reachable;
  }

  // Raw per-field arrays for the wavefront kernels and bulk queries.
  [[nodiscard]] const double* arrival_max_data() const {
    return arrival_max_.data();
  }
  [[nodiscard]] const double* required_data() const {
    return required_.data();
  }
  [[nodiscard]] std::vector<double>& required_array() { return required_; }

 private:
  std::vector<double> arrival_max_;
  std::vector<double> arrival_min_;
  std::vector<double> slew_;
  std::vector<double> required_;
  std::vector<std::uint8_t> reachable_;
};

// Per-endpoint margins: extra required-time tightening (ns; negative values
// loosen the endpoint). Stored dense by pin index so the backward hot loop
// probes a flat array instead of hashing, plus an active list for
// iteration/clearing (endpoints with a margin are a tiny fraction of pins).
class EndpointMargins {
 public:
  [[nodiscard]] double get(PinId pin) const {
    const std::size_t i = pin.index();
    return i < dense_.size() ? dense_[i] : 0.0;
  }
  // Returns true when the stored margin actually changed.
  bool set(PinId pin, double margin) {
    const std::size_t i = pin.index();
    if (i >= dense_.size()) {
      if (margin == 0.0) return false;
      dense_.resize(i + 1, 0.0);
    }
    const double old = dense_[i];
    if (old == margin) return false;
    if (old == 0.0) {
      active_.push_back(pin);
    } else if (margin == 0.0) {
      for (std::size_t k = 0; k < active_.size(); ++k) {
        if (active_[k] == pin) {
          active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(k));
          break;
        }
      }
    }
    dense_[i] = margin;
    return true;
  }
  void clear() {
    for (PinId p : active_) dense_[p.index()] = 0.0;
    active_.clear();
  }
  [[nodiscard]] bool empty() const { return active_.empty(); }
  [[nodiscard]] std::size_t size() const { return active_.size(); }
  // Pins with a non-zero margin, in insertion order.
  [[nodiscard]] const std::vector<PinId>& active() const { return active_; }

 private:
  std::vector<double> dense_;   // by pin index; 0 = no margin
  std::vector<PinId> active_;   // pins with dense_[pin] != 0
};

}  // namespace rlccd
