file(REMOVE_RECURSE
  "librlccd_common.a"
)
