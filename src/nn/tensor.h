// Minimal reverse-mode autograd tensor library.
//
// Tensors are dense row-major float matrices (vectors are 1xN or Nx1). A
// Tensor is a cheap handle onto a shared node; operations (nn/ops.h) build a
// dynamic computation graph, and Tensor::backward() runs reverse-mode
// differentiation from a scalar. This is deliberately small — just the ops
// EP-GNN, the LSTM encoder, the attention decoder and REINFORCE need — but
// exact: every op has an analytic gradient validated against finite
// differences in tests/nn/gradcheck_test.cpp.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/contracts.h"

namespace rlccd {

struct TensorImpl {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<float> value;
  std::vector<float> grad;  // allocated iff requires_grad
  bool requires_grad = false;

  // Parents keep the upstream graph alive; backward_fn pushes this node's
  // grad into the parents' grads.
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void()> backward_fn;

  [[nodiscard]] std::size_t size() const { return rows * cols; }
  void ensure_grad() {
    if (grad.size() != value.size()) grad.assign(value.size(), 0.0f);
  }
};

class Tensor {
 public:
  Tensor() = default;

  static Tensor zeros(std::size_t rows, std::size_t cols,
                      bool requires_grad = false);
  static Tensor full(std::size_t rows, std::size_t cols, float fill,
                     bool requires_grad = false);
  static Tensor from_data(std::vector<float> data, std::size_t rows,
                          std::size_t cols, bool requires_grad = false);
  static Tensor scalar(float v, bool requires_grad = false) {
    return from_data({v}, 1, 1, requires_grad);
  }

  [[nodiscard]] bool defined() const { return impl_ != nullptr; }
  [[nodiscard]] std::size_t rows() const { return impl().rows; }
  [[nodiscard]] std::size_t cols() const { return impl().cols; }
  [[nodiscard]] std::size_t size() const { return impl().size(); }

  [[nodiscard]] float* data() { return impl().value.data(); }
  [[nodiscard]] const float* data() const { return impl().value.data(); }
  [[nodiscard]] float at(std::size_t r, std::size_t c) const {
    RLCCD_EXPECTS(r < rows() && c < cols());
    return impl().value[r * cols() + c];
  }
  void set(std::size_t r, std::size_t c, float v) {
    RLCCD_EXPECTS(r < rows() && c < cols());
    impl().value[r * cols() + c] = v;
  }
  [[nodiscard]] float item() const {
    RLCCD_EXPECTS(size() == 1);
    return impl().value[0];
  }

  [[nodiscard]] bool requires_grad() const { return impl().requires_grad; }
  [[nodiscard]] const std::vector<float>& grad() const {
    RLCCD_EXPECTS(impl().requires_grad);
    const_cast<TensorImpl&>(impl()).ensure_grad();
    return impl().grad;
  }
  [[nodiscard]] std::vector<float>& grad_mut() {
    RLCCD_EXPECTS(impl().requires_grad);
    impl().ensure_grad();
    return impl().grad;
  }
  void zero_grad() {
    if (impl().requires_grad) impl().grad.assign(size(), 0.0f);
  }

  // Reverse-mode AD from this scalar (1x1). Each reachable requires-grad
  // node's grad is *accumulated* (callers zero parameter grads between
  // backward passes).
  void backward() const;

  // Detached copy of the values (no graph).
  [[nodiscard]] Tensor detach_copy() const;

  [[nodiscard]] TensorImpl& impl() {
    RLCCD_EXPECTS(impl_ != nullptr);
    return *impl_;
  }
  [[nodiscard]] const TensorImpl& impl() const {
    RLCCD_EXPECTS(impl_ != nullptr);
    return *impl_;
  }
  [[nodiscard]] const std::shared_ptr<TensorImpl>& ptr() const { return impl_; }

  // Internal: wrap an impl (used by ops).
  static Tensor wrap(std::shared_ptr<TensorImpl> impl) {
    Tensor t;
    t.impl_ = std::move(impl);
    return t;
  }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

// Creates a result node whose requires_grad is the OR of the parents'.
Tensor make_result(std::size_t rows, std::size_t cols,
                   std::vector<std::shared_ptr<TensorImpl>> parents);

}  // namespace rlccd
