# Empty dependencies file for rlccd_netlist.
# This may be replaced when dependencies are built.
