file(REMOVE_RECURSE
  "librlccd_nn.a"
)
