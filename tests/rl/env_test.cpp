#include "rl/env.h"

#include <gtest/gtest.h>

namespace rlccd {
namespace {

struct Fixture {
  Design design;
  DesignGraph graph;

  Fixture() : design(make()), graph(design) {}

  static Design make() {
    GeneratorConfig cfg;
    cfg.target_cells = 500;
    cfg.seed = 73;
    cfg.clock_tightness = 0.75;
    return generate_design(cfg);
  }
};

TEST(SelectionEnv, StartsAllValid) {
  Fixture f;
  SelectionEnv env(&f.graph, 0.3);
  EXPECT_FALSE(env.done());
  for (char v : env.valid()) EXPECT_EQ(v, 1);
  EXPECT_TRUE(env.selected().empty());
}

TEST(SelectionEnv, StepSelectsAndMasksOverlaps) {
  Fixture f;
  SelectionEnv env(&f.graph, 0.3);
  int masked = env.step(0);
  EXPECT_EQ(env.selected().size(), 1u);
  EXPECT_EQ(env.valid()[0], 0);
  // Every masked endpoint overlaps the selection above threshold.
  int recount = 0;
  for (std::size_t j = 1; j < env.valid().size(); ++j) {
    if (!env.valid()[j]) {
      EXPECT_GT(f.graph.cones().overlap(0, j), 0.3);
      ++recount;
    }
  }
  EXPECT_EQ(masked, recount);
}

TEST(SelectionEnv, EpisodeTerminatesWithAllSelectedOrMasked) {
  Fixture f;
  SelectionEnv env(&f.graph, 0.3);
  while (!env.done()) {
    // Pick the first valid endpoint.
    std::size_t a = 0;
    while (!env.valid()[a]) ++a;
    env.step(a);
  }
  std::size_t n = env.valid().size();
  for (char v : env.valid()) EXPECT_EQ(v, 0);
  EXPECT_LE(env.selected().size(), n);
  EXPECT_GE(env.selected().size(), 1u);
}

TEST(SelectionEnv, ThresholdOneMeansNoMasking) {
  Fixture f;
  SelectionEnv env(&f.graph, 1.0);  // overlap can never exceed 1
  std::size_t steps = 0;
  while (!env.done()) {
    std::size_t a = 0;
    while (!env.valid()[a]) ++a;
    env.step(a);
    ++steps;
  }
  EXPECT_EQ(steps, f.graph.num_endpoints())
      << "with rho=1 every endpoint must be selected individually";
}

TEST(SelectionEnv, LowerThresholdMasksMore) {
  Fixture f;
  auto count_steps = [&](double rho) {
    SelectionEnv env(&f.graph, rho);
    std::size_t steps = 0;
    while (!env.done()) {
      std::size_t a = 0;
      while (!env.valid()[a]) ++a;
      env.step(a);
      ++steps;
    }
    return steps;
  };
  EXPECT_LE(count_steps(0.1), count_steps(0.9));
}

TEST(SelectionEnv, CellMaskFlagsTrackSelectionAndMasking) {
  Fixture f;
  SelectionEnv env(&f.graph, 0.3);
  std::vector<char> before = env.cell_mask_flags();
  for (char v : before) EXPECT_EQ(v, 0);

  env.step(0);
  std::vector<char> after = env.cell_mask_flags();
  // The selected endpoint's owner cell is flagged.
  EXPECT_EQ(after[f.graph.endpoint_rows()[0]], 1);
  std::size_t flagged = 0;
  for (char v : after) flagged += static_cast<std::size_t>(v);
  EXPECT_GE(flagged, 1u);
}

TEST(SelectionEnv, ResetRestoresInitialState) {
  Fixture f;
  SelectionEnv env(&f.graph, 0.3);
  env.step(0);
  env.reset();
  EXPECT_TRUE(env.selected().empty());
  for (char v : env.valid()) EXPECT_EQ(v, 1);
}

TEST(SelectionEnv, SelectedPinsMapToViolatingEndpoints) {
  Fixture f;
  SelectionEnv env(&f.graph, 0.3);
  env.step(2);
  std::vector<PinId> pins = env.selected_pins();
  ASSERT_EQ(pins.size(), 1u);
  EXPECT_EQ(pins[0], f.graph.violating()[2]);
}

}  // namespace
}  // namespace rlccd
