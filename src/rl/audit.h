// Decision provenance for RL-CCD training runs ("why did the agent pick
// these endpoints?").
//
// A SelectionAudit records, for every step of one rollout, the chosen
// endpoint with its pristine slack, the log-probability and entropy of the
// masked attention distribution (paper Eq. 6), the top-k endpoint
// probabilities, and every endpoint the action masked together with the
// cone-overlap ratio that masked it (Fig. 3). The trainer collects one per
// worker per iteration and forwards them — plus per-iteration aggregates
// (reward, baseline, gradient norm) — to an AuditSink.
//
// JsonlAuditWriter streams the records as JSON Lines, one self-describing
// object per line ("type":"rollout" | "iteration" | "flow"). Numbers are
// serialized with 17 significant digits, so a deterministic seeded run
// produces a byte-identical file (the golden test relies on this); no
// wall-clock timestamps are recorded for the same reason.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace rlccd {

// One endpoint masked by an action, with the fan-in cone-overlap ratio
// against the chosen endpoint that exceeded rho.
struct AuditMaskEvent {
  std::uint32_t endpoint = 0;
  double overlap = 0.0;
};

// One selection step of a rollout.
struct AuditStep {
  std::uint32_t chosen = 0;  // endpoint index (DesignGraph::violating order)
  double slack = 0.0;        // pristine slack of the chosen endpoint (ns)
  double log_prob = 0.0;     // log pi(chosen | state)
  double entropy = 0.0;      // entropy of the masked softmax (nats)
  // Largest attention probabilities this step, descending (ties broken by
  // endpoint index); at most SelectionAudit::kTopK entries.
  std::vector<std::pair<std::uint32_t, double>> top_probs;
  // Endpoints masked by this action (cone overlap > rho).
  std::vector<AuditMaskEvent> masked;
};

// Full provenance of one trajectory.
struct SelectionAudit {
  static constexpr std::size_t kTopK = 5;
  std::vector<AuditStep> steps;
  bool poisoned = false;  // trajectory stopped on non-finite logits

  [[nodiscard]] double mean_entropy() const;
  void clear() {
    steps.clear();
    poisoned = false;
  }
};

// One trajectory as the trainer saw it: the audit plus its outcome.
struct RolloutAuditRecord {
  int iteration = -1;  // -1: outside the training loop (greedy decode)
  int worker = -1;
  double tns = 0.0;     // final TNS of the reward flow (when it ran)
  double reward = 0.0;  // normalized reward (when finite)
  bool flow_ran = false;
  bool poisoned = false;
  bool cancelled = false;  // rollout watchdog fired
  bool crashed = false;    // isolated worker process lost (restarts exhausted)
  // Memoization provenance: the rollout's state hash and whether the flow
  // outcome was served from the cache. In-memory only — deliberately absent
  // from to_json(), so the audit JSONL of a cached run stays byte-identical
  // to a cache-disabled run (pinned by trainer_cache_test); hit counts are
  // observable through the train.cache_* metrics and the trace instead.
  Hash128 state_hash;
  bool cache_hit = false;
  const SelectionAudit* audit = nullptr;  // never null when emitted

  [[nodiscard]] std::string to_json() const;  // one JSONL object
};

// Per-iteration aggregates over the surviving trajectories.
struct IterationAuditRecord {
  int iteration = 0;
  int survivors = 0;
  int poisoned = 0;
  int cancelled = 0;
  int crashed = 0;  // workers lost to process crashes this iteration
  double mean_reward = 0.0;
  double mean_tns = 0.0;
  double iter_best_tns = 0.0;
  double best_tns = 0.0;
  double mean_steps = 0.0;
  double mean_entropy = 0.0;  // mean over surviving trajectories
  double grad_norm = 0.0;     // pre-clip norm of the merged gradient
  double baseline = 0.0;      // baseline used for this iteration's advantage

  [[nodiscard]] std::string to_json() const;
};

// Outcome of one full placement flow (the facade's final default/RL flows):
// summary plus per-prioritized-endpoint begin/final slack.
struct FlowAuditRecord {
  struct Outcome {
    std::uint64_t pin = 0;  // PinId value
    double begin_slack = 0.0;
    double final_slack = 0.0;
  };
  std::string label;  // "default" | "rl"
  double wns = 0.0;
  double tns = 0.0;
  std::uint64_t nve = 0;
  std::vector<Outcome> outcomes;

  [[nodiscard]] std::string to_json() const;
};

// Receives provenance records on the thread running the training loop (the
// trainer emits after its workers have joined, in worker order, so a sink
// needs no locking of its own).
class AuditSink {
 public:
  virtual ~AuditSink() = default;
  virtual void on_rollout(const RolloutAuditRecord& record) = 0;
  virtual void on_iteration(const IterationAuditRecord& record) = 0;
  virtual void on_flow(const FlowAuditRecord& record) { (void)record; }
};

// Streams records to a JSON Lines file.
class JsonlAuditWriter : public AuditSink {
 public:
  // Creates/truncates `path`; fails with an io_error Status when the file
  // cannot be opened.
  static Status open(const std::string& path,
                     std::unique_ptr<JsonlAuditWriter>& out);
  ~JsonlAuditWriter() override;
  JsonlAuditWriter(const JsonlAuditWriter&) = delete;
  JsonlAuditWriter& operator=(const JsonlAuditWriter&) = delete;

  void on_rollout(const RolloutAuditRecord& record) override;
  void on_iteration(const IterationAuditRecord& record) override;
  void on_flow(const FlowAuditRecord& record) override;

  // Flushes and closes, reporting any buffered write error; the destructor
  // closes silently.
  Status close();

 private:
  explicit JsonlAuditWriter(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}
  void write_line(const std::string& line);

  std::FILE* file_;
  std::string path_;
};

}  // namespace rlccd
