file(REMOVE_RECURSE
  "CMakeFiles/sta_tests.dir/sta/clock_schedule_test.cpp.o"
  "CMakeFiles/sta_tests.dir/sta/clock_schedule_test.cpp.o.d"
  "CMakeFiles/sta_tests.dir/sta/cone_test.cpp.o"
  "CMakeFiles/sta_tests.dir/sta/cone_test.cpp.o.d"
  "CMakeFiles/sta_tests.dir/sta/path_test.cpp.o"
  "CMakeFiles/sta_tests.dir/sta/path_test.cpp.o.d"
  "CMakeFiles/sta_tests.dir/sta/sta_edge_test.cpp.o"
  "CMakeFiles/sta_tests.dir/sta/sta_edge_test.cpp.o.d"
  "CMakeFiles/sta_tests.dir/sta/sta_property_test.cpp.o"
  "CMakeFiles/sta_tests.dir/sta/sta_property_test.cpp.o.d"
  "CMakeFiles/sta_tests.dir/sta/sta_test.cpp.o"
  "CMakeFiles/sta_tests.dir/sta/sta_test.cpp.o.d"
  "sta_tests"
  "sta_tests.pdb"
  "sta_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sta_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
