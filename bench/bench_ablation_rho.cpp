// Ablation A: overlap-masking threshold rho (paper Sec. III-C, default 0.3).
//
// Sweeps rho and reports final TNS, selection count, trajectory length and
// training cost on two blocks — quantifying the claim that masking "prunes
// the action space while letting the agent pick the selection count".
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"

using namespace rlccd;
using namespace rlccd::bench;

int main() {
  set_log_level(LogLevel::Warn);
  print_header("Ablation: fan-in cone overlap threshold rho");
  BenchTier t = tier();

  TablePrinter table({"block", "rho", "final TNS", "gain vs default",
                      "|selection|", "mean steps/traj", "train sec"});

  // The rho = 1.0 arm disables masking, making trajectory length equal to
  // the violating-endpoint count (one EP-GNN encode per step) — quadratic
  // cost in NVE. The sweep therefore runs at half the tier scale.
  for (const char* name : {"block18"}) {
    const BlockSpec& spec = find_block(name);
    Design design =
        generate_design(to_generator_config(spec, 0.5 * t.scale));
    for (double rho : {0.1, 0.3, 0.6, 1.0}) {
      RlCcdConfig cfg = agent_config(design, t);
      cfg.train.overlap_threshold = rho;
      RlCcd agent(&design, cfg);
      RlCcdResult r = agent.run();
      double mean_steps = 0.0;
      for (const IterationStats& it : r.train.history) {
        mean_steps += it.mean_steps;
      }
      if (!r.train.history.empty()) {
        mean_steps /= static_cast<double>(r.train.history.size());
      }
      table.add_row({name, TablePrinter::fmt(rho, 1),
                     TablePrinter::fmt(r.rl_flow.final_summary.tns, 3),
                     TablePrinter::fmt_pct(r.tns_gain_pct() / 100.0, 1),
                     std::to_string(r.selection.size()),
                     TablePrinter::fmt(mean_steps, 1),
                     TablePrinter::fmt(r.train.train_seconds, 1)});
      std::fprintf(stderr, "[rho] %s rho=%.1f done\n", name, rho);
    }
  }
  table.print();
  std::printf("\nrho = 1.0 disables masking (every endpoint selected "
              "one-by-one): longest trajectories, highest cost.\n"
              "The paper's default rho = 0.3 prunes the action space while "
              "keeping the selection count adaptive.\n");
  return 0;
}
