#include "place/placer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace rlccd {

GlobalPlacer::GlobalPlacer(Netlist* netlist, PlacerConfig config, Rng rng)
    : netlist_(netlist), config_(config), rng_(rng) {
  RLCCD_EXPECTS(netlist != nullptr);
  RLCCD_EXPECTS(config.target_utilization > 0.0 &&
                config.target_utilization <= 1.0);
}

Die GlobalPlacer::size_die() const {
  const Tech& tech = netlist_->library().tech();
  double cell_area = tech.cell_pitch_um * tech.cell_pitch_um;
  double total_area = cell_area *
                      static_cast<double>(netlist_->num_real_cells()) /
                      config_.target_utilization;
  double side = std::max(10.0, std::sqrt(total_area));
  return Die{side, side, tech.cell_pitch_um};
}

Die GlobalPlacer::run() {
  Netlist& nl = *netlist_;
  Die die = size_die();

  // Pin ports evenly around the periphery; seed movable cells randomly.
  std::vector<CellId> movable;
  std::vector<CellId> ports;
  for (const Cell& c : nl.cells()) {
    if (nl.is_port(c.id)) {
      ports.push_back(c.id);
    } else {
      movable.push_back(c.id);
    }
  }
  for (std::size_t i = 0; i < ports.size(); ++i) {
    double t = static_cast<double>(i) / static_cast<double>(ports.size());
    double perimeter = 2.0 * (die.width + die.height);
    double d = t * perimeter;
    double x, y;
    if (d < die.width) {
      x = d; y = 0.0;
    } else if (d < die.width + die.height) {
      x = die.width; y = d - die.width;
    } else if (d < 2.0 * die.width + die.height) {
      x = 2.0 * die.width + die.height - d; y = die.height;
    } else {
      x = 0.0; y = perimeter - d;
    }
    nl.set_position(ports[i], x, y);
  }
  for (CellId id : movable) {
    nl.set_position(id, rng_.uniform(0.0, die.width),
                    rng_.uniform(0.0, die.height));
  }

  // Force-directed iterations: move each cell toward the centroid of every
  // cell it shares a net with, with jitter for spreading.
  for (int iter = 0; iter < config_.iterations; ++iter) {
    double jitter = config_.spread_jitter * die.row_height *
                    (1.0 - static_cast<double>(iter) /
                               static_cast<double>(config_.iterations));
    for (CellId id : movable) {
      const Cell& c = nl.cell(id);
      double sx = 0.0, sy = 0.0;
      int count = 0;
      auto account_net = [&](NetId net_id) {
        if (!net_id.valid()) return;
        const Net& n = nl.net(net_id);
        // High-fanout nets (clock, reset) would collapse the placement into
        // a single cluster; standard placers ignore them too.
        if (n.sinks.size() > 32) return;
        if (n.driver.valid()) {
          const Cell& o = nl.cell(nl.pin(n.driver).cell);
          if (o.id != id) { sx += o.x; sy += o.y; ++count; }
        }
        for (PinId s : n.sinks) {
          const Cell& o = nl.cell(nl.pin(s).cell);
          if (o.id != id) { sx += o.x; sy += o.y; ++count; }
        }
      };
      for (PinId in : c.inputs) account_net(nl.pin(in).net);
      if (c.output.valid()) account_net(nl.pin(c.output).net);
      if (count == 0) continue;
      double cx = sx / count + rng_.uniform(-jitter, jitter);
      double cy = sy / count + rng_.uniform(-jitter, jitter);
      double nx = c.x + config_.move_rate * (cx - c.x);
      double ny = c.y + config_.move_rate * (cy - c.y);
      nx = std::clamp(nx, 0.0, die.width);
      ny = std::clamp(ny, 0.0, die.height);
      nl.set_position(id, nx, ny);
    }
  }

  nl.update_wire_parasitics();
  return die;
}

double GlobalPlacer::legalize(Netlist& netlist, const Die& die) {
  // Bucket movable cells into rows, then spread x positions so cells within
  // a row sit at least one pitch apart.
  const double pitch = die.row_height;
  const int num_rows =
      std::max(1, static_cast<int>(std::floor(die.height / pitch)));
  std::vector<std::vector<CellId>> rows(static_cast<std::size_t>(num_rows));
  for (const Cell& c : netlist.cells()) {
    if (netlist.is_port(c.id)) continue;
    int row = std::clamp(static_cast<int>(std::floor(c.y / pitch)), 0,
                         num_rows - 1);
    rows[static_cast<std::size_t>(row)].push_back(c.id);
  }
  // Overfull rows spill their overflow into the nearest under-full row so
  // the per-row packing below can always honour the pitch.
  const auto capacity = static_cast<std::size_t>(
      std::max(1.0, std::floor(die.width / pitch)));
  for (int r = 0; r < num_rows; ++r) {
    auto& row = rows[static_cast<std::size_t>(r)];
    while (row.size() > capacity) {
      CellId spilled = row.back();
      row.pop_back();
      int target = -1;
      for (int d = 1; d < num_rows; ++d) {
        for (int cand : {r - d, r + d}) {
          if (cand < 0 || cand >= num_rows) continue;
          if (rows[static_cast<std::size_t>(cand)].size() < capacity) {
            target = cand;
            break;
          }
        }
        if (target >= 0) break;
      }
      if (target < 0) break;  // die genuinely full; keep the overlap
      rows[static_cast<std::size_t>(target)].push_back(spilled);
    }
  }

  double displacement = 0.0;
  for (int r = 0; r < num_rows; ++r) {
    auto& row = rows[static_cast<std::size_t>(r)];
    std::sort(row.begin(), row.end(), [&](CellId a, CellId b) {
      return netlist.cell(a).x < netlist.cell(b).x;
    });
    // Forward pass enforces the pitch; if the last cell ran past the die
    // edge, a backward pass shifts cells left to fit.
    std::vector<double> xs(row.size());
    double cursor = 0.0;
    for (std::size_t i = 0; i < row.size(); ++i) {
      xs[i] = std::max(netlist.cell(row[i]).x, cursor);
      cursor = xs[i] + pitch;
    }
    double limit = die.width;
    for (std::size_t i = row.size(); i > 0; --i) {
      xs[i - 1] = std::min(xs[i - 1], limit);
      limit = xs[i - 1] - pitch;
    }
    double y = (static_cast<double>(r) + 0.5) * pitch;
    for (std::size_t i = 0; i < row.size(); ++i) {
      const Cell& c = netlist.cell(row[i]);
      displacement += std::abs(xs[i] - c.x) + std::abs(y - c.y);
      netlist.set_position(row[i], xs[i], y);
    }
  }
  netlist.update_wire_parasitics();
  return displacement;
}

double GlobalPlacer::total_hpwl(const Netlist& netlist) {
  double total = 0.0;
  for (const Net& n : netlist.nets()) total += netlist.net_hpwl(n.id);
  return total;
}

}  // namespace rlccd
