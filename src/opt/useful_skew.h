// Useful-skew engine: iterative local slack balancing.
//
// Each flop owns a clock-arrival adjustment delta in [-max_abs_skew,
// +max_abs_skew]. Per sweep, every flop compares the worst setup slack of the
// paths it *captures* (slack at its D endpoint, margins included — this is
// where the RL prioritization margins bite) against the worst slack of the
// paths it *launches* (slack at its Q pin) and moves its delta to balance the
// two, clamped by the skew bound and by the flop's own hold slack. Sweeps
// repeat with a full STA update in between until moves die out — the classic
// relaxation form of clock-skew scheduling.
//
// Greedy locality is deliberate: like production CCD engines, the balancer
// spreads slack evenly with no notion of which endpoints the *downstream*
// data-path optimizer could fix cheaply. That blindness is exactly the gap
// the paper's endpoint prioritization exploits.
#pragma once

#include "sta/sta.h"

namespace rlccd {

struct UsefulSkewConfig {
  double max_abs_skew = 0.15;   // ns; bound on |delta| per flop
  int max_sweeps = 25;
  double rate = 0.6;            // fraction of the imbalance applied per sweep
  double hold_guard = 0.0;      // keep endpoint hold slack >= this
  double min_move = 1e-4;       // convergence threshold (ns)
};

struct UsefulSkewResult {
  int sweeps = 0;
  int flops_adjusted = 0;       // flops with a nonzero final adjustment
  double max_abs_adjustment = 0.0;
};

// Balances the schedule in sta.clock(); leaves sta fully updated.
UsefulSkewResult run_useful_skew(Sta& sta, const UsefulSkewConfig& config);

}  // namespace rlccd
