#include "nn/sparse.h"

#include <gtest/gtest.h>

namespace rlccd {
namespace {

TEST(Sparse, FromTripletsBuildsCsr) {
  SparseMatrix m = SparseMatrix::from_triplets(
      3, 3, {{2, 0, 1.0f}, {0, 1, 2.0f}, {0, 0, 3.0f}});
  ASSERT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.row_ptr[0], 0u);
  EXPECT_EQ(m.row_ptr[1], 2u);  // row 0 has two entries
  EXPECT_EQ(m.row_ptr[2], 2u);  // row 1 empty
  EXPECT_EQ(m.row_ptr[3], 3u);
  // Row 0 sorted by column.
  EXPECT_EQ(m.col_idx[0], 0u);
  EXPECT_FLOAT_EQ(m.values[0], 3.0f);
  EXPECT_EQ(m.col_idx[1], 1u);
  EXPECT_FLOAT_EQ(m.values[1], 2.0f);
}

TEST(Sparse, DuplicatesMergeBySummation) {
  SparseMatrix m = SparseMatrix::from_triplets(
      2, 2, {{0, 1, 1.0f}, {0, 1, 2.5f}});
  ASSERT_EQ(m.nnz(), 1u);
  EXPECT_FLOAT_EQ(m.values[0], 3.5f);
}

TEST(Sparse, TransposeRoundTrip) {
  SparseMatrix m = SparseMatrix::from_triplets(
      2, 3, {{0, 2, 1.0f}, {1, 0, 2.0f}, {1, 2, 3.0f}});
  SparseMatrix t = m.transposed();
  EXPECT_EQ(t.rows, 3u);
  EXPECT_EQ(t.cols, 2u);
  EXPECT_EQ(t.nnz(), 3u);

  SparseMatrix back = t.transposed();
  EXPECT_EQ(back.row_ptr, m.row_ptr);
  EXPECT_EQ(back.col_idx, m.col_idx);
  EXPECT_EQ(back.values, m.values);
}

TEST(Sparse, EmptyMatrix) {
  SparseMatrix m = SparseMatrix::from_triplets(4, 4, {});
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_EQ(m.row_ptr.size(), 5u);
  SparseMatrix t = m.transposed();
  EXPECT_EQ(t.nnz(), 0u);
}

TEST(Sparse, OperandCarriesConsistentTranspose) {
  SparseOperand op(SparseMatrix::from_triplets(
      2, 2, {{0, 1, 4.0f}, {1, 1, 5.0f}}));
  EXPECT_EQ(op.matrix.nnz(), op.matrix_t.nnz());
  EXPECT_EQ(op.matrix_t.rows, op.matrix.cols);
}

}  // namespace
}  // namespace rlccd
