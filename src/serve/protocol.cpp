#include "serve/protocol.h"

namespace rlccd {
namespace serve {

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kChildProgress: return "child_progress";
    case MsgType::kChildAudit: return "child_audit";
    case MsgType::kHello: return "hello";
    case MsgType::kHelloReply: return "hello_reply";
    case MsgType::kSubmit: return "submit";
    case MsgType::kSubmitReply: return "submit_reply";
    case MsgType::kPoll: return "poll";
    case MsgType::kJobStatus: return "job_status";
    case MsgType::kCancel: return "cancel";
    case MsgType::kStats: return "stats";
    case MsgType::kStatsReply: return "stats_reply";
    case MsgType::kWatch: return "watch";
    case MsgType::kProgress: return "progress";
    case MsgType::kAudit: return "audit";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kShutdownReply: return "shutdown_reply";
    case MsgType::kError: return "error";
    case MsgType::kStatsWatch: return "stats_watch";
    case MsgType::kMetrics: return "metrics";
    case MsgType::kMetricsReply: return "metrics_reply";
  }
  return "?";
}

const char* job_kind_name(JobKind kind) {
  switch (kind) {
    case JobKind::kTrain: return "train";
    case JobKind::kNoop: return "noop";
  }
  return "?";
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kRetryWait: return "retry_wait";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kShed: return "shed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kDrained: return "drained";
  }
  return "?";
}

bool job_state_terminal(JobState state) {
  switch (state) {
    case JobState::kQueued:
    case JobState::kRunning:
    case JobState::kRetryWait:
      return false;
    case JobState::kDone:
    case JobState::kFailed:
    case JobState::kShed:
    case JobState::kCancelled:
    case JobState::kDrained:
      return true;
  }
  return true;
}

// -- JobSpec ------------------------------------------------------------------

void encode_job_spec(std::string& out, const JobSpec& spec) {
  ipc_append_string(out, spec.session);
  ipc_append_pod(out, static_cast<std::uint8_t>(spec.kind));
  ipc_append_string(out, spec.block);
  ipc_append_pod(out, spec.scale);
  ipc_append_pod(out, spec.iters);
  ipc_append_pod(out, spec.rollout_workers);
  ipc_append_pod(out, spec.seed);
  ipc_append_pod(out, spec.priority);
  ipc_append_pod(out, spec.deadline_sec);
  ipc_append_pod(out, spec.noop_sec);
}

Status parse_job_spec(std::string_view bytes, std::size_t& offset,
                      JobSpec& spec) {
  RLCCD_TRY(ipc_parse_string(bytes, offset, spec.session, "spec.session"));
  std::uint8_t kind = 0;
  RLCCD_TRY(ipc_parse_pod(bytes, offset, kind, "spec.kind"));
  if (kind > static_cast<std::uint8_t>(JobKind::kNoop)) {
    return Status::corrupt("unknown job kind %u", kind);
  }
  spec.kind = static_cast<JobKind>(kind);
  RLCCD_TRY(ipc_parse_string(bytes, offset, spec.block, "spec.block"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, spec.scale, "spec.scale"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, spec.iters, "spec.iters"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, spec.rollout_workers,
                          "spec.rollout_workers"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, spec.seed, "spec.seed"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, spec.priority, "spec.priority"));
  RLCCD_TRY(
      ipc_parse_pod(bytes, offset, spec.deadline_sec, "spec.deadline_sec"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, spec.noop_sec, "spec.noop_sec"));
  return Status();
}

// -- JobStatus ----------------------------------------------------------------

void encode_job_status(std::string& out, const JobStatus& status) {
  ipc_append_pod(out, status.job_id);
  ipc_append_pod(out, static_cast<std::uint8_t>(status.state));
  ipc_append_string(out, status.session);
  ipc_append_pod(out, static_cast<std::uint8_t>(status.kind));
  ipc_append_pod(out, status.attempts);
  ipc_append_pod(out, status.iterations);
  ipc_append_pod(out, status.best_tns);
  ipc_append_pod(out, status.default_tns);
  ipc_append_pod(out, status.selection_size);
  ipc_append_pod(out, status.result_digest);
  ipc_append_string(out, status.detail);
  ipc_append_string(out, status.postmortem);
  ipc_append_string(out, status.trace);
}

Status parse_job_status(std::string_view bytes, std::size_t& offset,
                        JobStatus& status) {
  RLCCD_TRY(ipc_parse_pod(bytes, offset, status.job_id, "status.job_id"));
  std::uint8_t state = 0;
  RLCCD_TRY(ipc_parse_pod(bytes, offset, state, "status.state"));
  if (state > static_cast<std::uint8_t>(JobState::kDrained)) {
    return Status::corrupt("unknown job state %u", state);
  }
  status.state = static_cast<JobState>(state);
  RLCCD_TRY(ipc_parse_string(bytes, offset, status.session, "status.session"));
  std::uint8_t kind = 0;
  RLCCD_TRY(ipc_parse_pod(bytes, offset, kind, "status.kind"));
  if (kind > static_cast<std::uint8_t>(JobKind::kNoop)) {
    return Status::corrupt("unknown job kind %u", kind);
  }
  status.kind = static_cast<JobKind>(kind);
  RLCCD_TRY(ipc_parse_pod(bytes, offset, status.attempts, "status.attempts"));
  RLCCD_TRY(
      ipc_parse_pod(bytes, offset, status.iterations, "status.iterations"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, status.best_tns, "status.best_tns"));
  RLCCD_TRY(
      ipc_parse_pod(bytes, offset, status.default_tns, "status.default_tns"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, status.selection_size,
                          "status.selection_size"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, status.result_digest,
                          "status.result_digest"));
  RLCCD_TRY(ipc_parse_string(bytes, offset, status.detail, "status.detail"));
  RLCCD_TRY(
      ipc_parse_string(bytes, offset, status.postmortem, "status.postmortem"));
  RLCCD_TRY(ipc_parse_string(bytes, offset, status.trace, "status.trace"));
  return Status();
}

// -- small payloads -----------------------------------------------------------

void encode_hello(std::string& out, const Hello& hello) {
  ipc_append_pod(out, hello.version);
}

Status parse_hello(std::string_view bytes, std::size_t& offset, Hello& hello) {
  return ipc_parse_pod(bytes, offset, hello.version, "hello.version");
}

void encode_hello_reply(std::string& out, const HelloReply& reply) {
  ipc_append_pod(out, reply.version);
  ipc_append_pod(out, reply.daemon_pid);
}

Status parse_hello_reply(std::string_view bytes, std::size_t& offset,
                         HelloReply& reply) {
  RLCCD_TRY(ipc_parse_pod(bytes, offset, reply.version, "hello.version"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, reply.daemon_pid, "hello.pid"));
  return Status();
}

void encode_submit_reply(std::string& out, const SubmitReply& reply) {
  ipc_append_pod(out, static_cast<std::uint8_t>(reply.accepted ? 1 : 0));
  ipc_append_pod(out, reply.job_id);
  ipc_append_string(out, reply.reason);
}

Status parse_submit_reply(std::string_view bytes, std::size_t& offset,
                          SubmitReply& reply) {
  std::uint8_t accepted = 0;
  RLCCD_TRY(ipc_parse_pod(bytes, offset, accepted, "submit.accepted"));
  reply.accepted = accepted != 0;
  RLCCD_TRY(ipc_parse_pod(bytes, offset, reply.job_id, "submit.job_id"));
  RLCCD_TRY(ipc_parse_string(bytes, offset, reply.reason, "submit.reason"));
  return Status();
}

void encode_job_ref(std::string& out, const JobRef& ref) {
  ipc_append_pod(out, ref.job_id);
}

Status parse_job_ref(std::string_view bytes, std::size_t& offset,
                     JobRef& ref) {
  return ipc_parse_pod(bytes, offset, ref.job_id, "job_ref.job_id");
}

// -- JobProgress --------------------------------------------------------------

void encode_job_progress(std::string& out, const JobProgress& progress) {
  ipc_append_pod(out, progress.job_id);
  ipc_append_string(out, progress.phase);
  ipc_append_string(out, progress.step);
  ipc_append_pod(out, progress.index);
  ipc_append_pod(out, progress.seconds);
  ipc_append_pod(out, static_cast<std::uint32_t>(progress.metrics.size()));
  for (const auto& [name, value] : progress.metrics) {
    ipc_append_string(out, name);
    ipc_append_pod(out, value);
  }
}

Status parse_job_progress(std::string_view bytes, std::size_t& offset,
                          JobProgress& progress) {
  RLCCD_TRY(ipc_parse_pod(bytes, offset, progress.job_id, "progress.job_id"));
  RLCCD_TRY(ipc_parse_string(bytes, offset, progress.phase, "progress.phase"));
  RLCCD_TRY(ipc_parse_string(bytes, offset, progress.step, "progress.step"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, progress.index, "progress.index"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, progress.seconds,
                          "progress.seconds"));
  std::uint32_t n = 0;
  RLCCD_TRY(ipc_parse_pod(bytes, offset, n, "progress.metric_count"));
  if (n > 1024) return Status::corrupt("absurd metric count %u", n);
  progress.metrics.clear();
  progress.metrics.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name;
    double value = 0.0;
    RLCCD_TRY(ipc_parse_string(bytes, offset, name, "progress.metric_name"));
    RLCCD_TRY(ipc_parse_pod(bytes, offset, value, "progress.metric_value"));
    progress.metrics.emplace_back(std::move(name), value);
  }
  return Status();
}

// -- JobResult ----------------------------------------------------------------

void encode_job_result(std::string& out, const JobResult& result) {
  ipc_append_pod(out, static_cast<std::uint8_t>(result.drained ? 1 : 0));
  ipc_append_pod(out, result.iterations);
  ipc_append_pod(out, result.best_tns);
  ipc_append_pod(out, result.default_tns);
  ipc_append_pod(out, result.selection_size);
  ipc_append_pod(out, result.digest);
  ipc_append_string(out, result.detail);
}

Status parse_job_result(std::string_view bytes, std::size_t& offset,
                        JobResult& result) {
  std::uint8_t drained = 0;
  RLCCD_TRY(ipc_parse_pod(bytes, offset, drained, "result.drained"));
  result.drained = drained != 0;
  RLCCD_TRY(ipc_parse_pod(bytes, offset, result.iterations,
                          "result.iterations"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, result.best_tns, "result.best_tns"));
  RLCCD_TRY(
      ipc_parse_pod(bytes, offset, result.default_tns, "result.default_tns"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, result.selection_size,
                          "result.selection_size"));
  RLCCD_TRY(ipc_parse_pod(bytes, offset, result.digest, "result.digest"));
  RLCCD_TRY(ipc_parse_string(bytes, offset, result.detail, "result.detail"));
  return Status();
}

}  // namespace serve
}  // namespace rlccd
