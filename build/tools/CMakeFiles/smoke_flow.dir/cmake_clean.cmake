file(REMOVE_RECURSE
  "CMakeFiles/smoke_flow.dir/smoke_flow.cpp.o"
  "CMakeFiles/smoke_flow.dir/smoke_flow.cpp.o.d"
  "smoke_flow"
  "smoke_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoke_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
