file(REMOVE_RECURSE
  "CMakeFiles/rlccd_place.dir/placer.cpp.o"
  "CMakeFiles/rlccd_place.dir/placer.cpp.o.d"
  "librlccd_place.a"
  "librlccd_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlccd_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
