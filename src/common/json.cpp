#include "common/json.h"

#include <cctype>
#include <cstdlib>

namespace rlccd {

namespace {

constexpr int kMaxDepth = 128;

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->number_value() : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->string_value()
                                        : std::string(fallback);
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_bool() ? v->bool_value() : fallback;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  Status parse(JsonValue& out) {
    RLCCD_TRY(value(out, 0));
    skip_ws();
    if (pos_ != s_.size()) {
      return Status::corrupt("JSON: trailing content at byte %zu", pos_);
    }
    return Status();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool eat(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  bool eat_word(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status value(JsonValue& v, int depth) {
    if (depth > kMaxDepth) {
      return Status::corrupt("JSON: nesting deeper than %d", kMaxDepth);
    }
    skip_ws();
    const char c = peek();
    if (c == '{') return object(v, depth);
    if (c == '[') return array(v, depth);
    if (c == '"') {
      v.type_ = JsonValue::Type::String;
      return string(v.string_);
    }
    if (eat_word("null")) {
      v.type_ = JsonValue::Type::Null;
      return Status();
    }
    if (eat_word("true")) {
      v.type_ = JsonValue::Type::Bool;
      v.bool_ = true;
      return Status();
    }
    if (eat_word("false")) {
      v.type_ = JsonValue::Type::Bool;
      v.bool_ = false;
      return Status();
    }
    return number(v);
  }

  Status object(JsonValue& v, int depth) {
    v.type_ = JsonValue::Type::Object;
    eat('{');
    if (eat('}')) return Status();
    do {
      skip_ws();
      if (peek() != '"') {
        return Status::corrupt("JSON: expected object key at byte %zu", pos_);
      }
      std::string key;
      RLCCD_TRY(string(key));
      if (!eat(':')) {
        return Status::corrupt("JSON: expected ':' at byte %zu", pos_);
      }
      JsonValue member;
      RLCCD_TRY(value(member, depth + 1));
      v.object_.emplace_back(std::move(key), std::move(member));
    } while (eat(','));
    if (!eat('}')) {
      return Status::corrupt("JSON: expected '}' at byte %zu", pos_);
    }
    return Status();
  }

  Status array(JsonValue& v, int depth) {
    v.type_ = JsonValue::Type::Array;
    eat('[');
    if (eat(']')) return Status();
    do {
      JsonValue item;
      RLCCD_TRY(value(item, depth + 1));
      v.array_.push_back(std::move(item));
    } while (eat(','));
    if (!eat(']')) {
      return Status::corrupt("JSON: expected ']' at byte %zu", pos_);
    }
    return Status();
  }

  Status string(std::string& out) {
    ++pos_;  // opening quote, guaranteed by the caller
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_];
      if (c == '\\') {
        if (++pos_ >= s_.size()) break;
        switch (s_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= s_.size()) {
              return Status::corrupt("JSON: truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = s_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return Status::corrupt("JSON: bad \\u escape at byte %zu",
                                       pos_);
            }
            pos_ += 4;
            // UTF-8 encode the code point (surrogate pairs are passed through
            // as-is; the exports only escape control characters).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Status::corrupt("JSON: bad escape '\\%c' at byte %zu",
                                   s_[pos_], pos_);
        }
      } else {
        out += c;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) {
      return Status::corrupt("JSON: unterminated string");
    }
    ++pos_;  // closing quote
    return Status();
  }

  Status number(JsonValue& v) {
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) != 0 ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) {
      return Status::corrupt("JSON: unexpected character at byte %zu", pos_);
    }
    const std::string text(s_.substr(pos_, end - pos_));
    char* parsed_end = nullptr;
    const double value = std::strtod(text.c_str(), &parsed_end);
    if (parsed_end == nullptr || *parsed_end != '\0') {
      return Status::corrupt("JSON: malformed number '%s'", text.c_str());
    }
    v.type_ = JsonValue::Type::Number;
    v.number_ = value;
    pos_ = end;
    return Status();
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

Status JsonValue::parse(std::string_view text, JsonValue& out) {
  out = JsonValue();
  return JsonParser(text).parse(out);
}

}  // namespace rlccd
