#include "nn/optim.h"

#include <gtest/gtest.h>

#include "nn/modules.h"
#include "nn/ops.h"

namespace rlccd {
namespace {

// Minimize (x - 3)^2 and expect convergence to 3.
template <class Opt, class... Args>
double minimize_quadratic(int steps, Args... args) {
  Tensor x = Tensor::scalar(0.0f, true);
  Opt opt({x}, args...);
  for (int i = 0; i < steps; ++i) {
    opt.zero_grad();
    Tensor diff = ops::affine(x, 1.0f, -3.0f);
    Tensor loss = ops::mul(diff, diff);
    loss.backward();
    opt.step();
  }
  return x.item();
}

TEST(Optim, SgdConvergesOnQuadratic) {
  EXPECT_NEAR(minimize_quadratic<Sgd>(200, 0.1), 3.0, 1e-3);
}

TEST(Optim, SgdMomentumConverges) {
  EXPECT_NEAR(minimize_quadratic<Sgd>(200, 0.05, 0.9), 3.0, 1e-2);
}

TEST(Optim, AdamConvergesOnQuadratic) {
  EXPECT_NEAR(minimize_quadratic<Adam>(400, 0.05), 3.0, 1e-2);
}

TEST(Optim, ZeroGradClears) {
  Tensor x = Tensor::scalar(1.0f, true);
  Sgd opt({x}, 0.1);
  Tensor y = ops::affine(x, 2.0f, 0.0f);
  y.backward();
  EXPECT_NE(x.grad()[0], 0.0f);
  opt.zero_grad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(Optim, ClipGradNormScalesDown) {
  Tensor a = Tensor::scalar(0.0f, true);
  Tensor b = Tensor::scalar(0.0f, true);
  a.grad_mut()[0] = 3.0f;
  b.grad_mut()[0] = 4.0f;  // norm 5
  std::vector<Tensor> params = {a, b};
  double norm = clip_grad_norm(params, 1.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(a.grad()[0], 0.6f, 1e-6);
  EXPECT_NEAR(b.grad()[0], 0.8f, 1e-6);
}

TEST(Optim, ClipGradNormLeavesSmallGradients) {
  Tensor a = Tensor::scalar(0.0f, true);
  a.grad_mut()[0] = 0.1f;
  std::vector<Tensor> params = {a};
  clip_grad_norm(params, 1.0);
  EXPECT_FLOAT_EQ(a.grad()[0], 0.1f);
}

TEST(Optim, AdamTrainsALinearModel) {
  // Fit y = 2x + 1 from samples.
  Rng rng(6);
  Linear lin(1, 1, rng);
  Adam opt(lin.parameters(), 0.05);
  for (int step = 0; step < 500; ++step) {
    float xv = static_cast<float>(rng.uniform(-1.0, 1.0));
    Tensor x = Tensor::from_data({xv}, 1, 1);
    Tensor target = Tensor::from_data({2.0f * xv + 1.0f}, 1, 1);
    opt.zero_grad();
    Tensor err = ops::sub(lin.forward(x), target);
    ops::mul(err, err).backward();
    opt.step();
  }
  EXPECT_NEAR(lin.weight().item(), 2.0f, 0.1);
  EXPECT_NEAR(lin.bias().item(), 1.0f, 0.1);
}

}  // namespace
}  // namespace rlccd
