# Empty compiler generated dependencies file for train_rlccd.
# This may be replaced when dependencies are built.
