#include "cts/clock_tree.h"

#include <gtest/gtest.h>

#include "designgen/generator.h"
#include "opt/useful_skew.h"

namespace rlccd {
namespace {

Design placed_design(std::size_t cells = 800, std::uint64_t seed = 151) {
  GeneratorConfig cfg;
  cfg.target_cells = cells;
  cfg.seed = seed;
  cfg.clock_tightness = 0.8;
  return generate_design(cfg);
}

TEST(ClockTree, CoversEveryFlopWithPositiveInsertionDelay) {
  Design d = placed_design();
  ClockSchedule zero(d.clock_period);
  ClockTree tree = ClockTree::build(*d.netlist, zero, CtsConfig{});
  EXPECT_EQ(tree.flops().size(), d.netlist->sequential_cells().size());
  for (CellId f : tree.flops()) {
    EXPECT_GT(tree.realized_arrival(f), 0.0);
  }
  const CtsReport& rep = tree.report();
  EXPECT_GT(rep.num_tree_buffers, 0u);
  EXPECT_GT(rep.depth, 1);
  EXPECT_GT(rep.total_wirelength, 0.0);
  EXPECT_GT(rep.clock_power, 0.0);
  EXPECT_GT(rep.max_insertion_delay, 0.0);
}

TEST(ClockTree, ZeroSkewScheduleRealizesWithBoundedError) {
  Design d = placed_design();
  ClockSchedule zero(d.clock_period);
  CtsConfig cfg;
  ClockTree tree = ClockTree::build(*d.netlist, zero, cfg);
  // Quantization bounds: each flop's error is at most half a quantum, so
  // the worst pairwise spread is at most one quantum.
  EXPECT_LE(tree.report().skew_error_max, cfg.pad_quantum + 1e-9);
  EXPECT_LE(tree.report().skew_error_avg, 0.5 * cfg.pad_quantum + 1e-9);
}

TEST(ClockTree, RealizesUsefulSkewDeltas) {
  Design d = placed_design();
  Sta sta = d.make_sta();
  UsefulSkewConfig skew_cfg;
  skew_cfg.max_abs_skew = 0.1 * d.clock_period;
  run_useful_skew(sta, skew_cfg);

  CtsConfig cfg;
  ClockTree tree = ClockTree::build(*d.netlist, sta.clock(), cfg);
  // Relative realized arrivals track the requested deltas within quantum.
  const auto& flops = tree.flops();
  ASSERT_GE(flops.size(), 2u);
  for (std::size_t i = 1; i < std::min<std::size_t>(flops.size(), 20); ++i) {
    double want = sta.clock().adjustment(flops[i]) -
                  sta.clock().adjustment(flops[0]);
    double got = tree.realized_arrival(flops[i]) -
                 tree.realized_arrival(flops[0]);
    EXPECT_NEAR(got, want, cfg.pad_quantum + 1e-9);
  }
}

TEST(ClockTree, ApplyToPreservesMeanAndRelativeArrivals) {
  Design d = placed_design();
  Sta sta = d.make_sta();
  UsefulSkewConfig skew_cfg;
  skew_cfg.max_abs_skew = 0.08 * d.clock_period;
  run_useful_skew(sta, skew_cfg);

  double want_mean = 0.0;
  std::vector<CellId> flops = d.netlist->sequential_cells();
  for (CellId f : flops) want_mean += sta.clock().adjustment(f);
  want_mean /= static_cast<double>(flops.size());

  ClockTree tree = ClockTree::build(*d.netlist, sta.clock(), CtsConfig{});
  ClockSchedule realized(d.clock_period);
  tree.apply_to(realized);

  double got_mean = 0.0;
  for (CellId f : flops) got_mean += realized.adjustment(f);
  got_mean /= static_cast<double>(flops.size());
  EXPECT_NEAR(got_mean, want_mean, 1e-6);
}

TEST(ClockTree, PostCtsTimingStaysCloseToIdealSkew) {
  Design d = placed_design(1000, 153);
  Sta sta = d.make_sta();
  UsefulSkewConfig skew_cfg;
  skew_cfg.max_abs_skew = 0.1 * d.clock_period;
  run_useful_skew(sta, skew_cfg);
  double ideal_tns = sta.summary().tns;

  ClockTree tree = ClockTree::build(*d.netlist, sta.clock(), CtsConfig{});
  Sta post(d.netlist.get(), d.sta_config, d.clock_period);
  tree.apply_to(post.clock());
  post.run();
  // Quantization can cost a little TNS but not a blow-up.
  EXPECT_GT(post.summary().tns,
            ideal_tns - 0.2 * std::abs(ideal_tns) - 0.05);
}

TEST(ClockTree, BiggerSkewRequestsNeedMorePadBuffers) {
  Design d = placed_design();
  ClockSchedule zero(d.clock_period);
  ClockTree base = ClockTree::build(*d.netlist, zero, CtsConfig{});

  Sta sta = d.make_sta();
  UsefulSkewConfig skew_cfg;
  skew_cfg.max_abs_skew = 0.15 * d.clock_period;
  run_useful_skew(sta, skew_cfg);
  ClockTree skewed = ClockTree::build(*d.netlist, sta.clock(), CtsConfig{});

  EXPECT_GE(skewed.report().num_pad_buffers, base.report().num_pad_buffers);
  EXPECT_GE(skewed.report().clock_power, base.report().clock_power);
}

TEST(ClockTree, LeafSizeControlsDepth) {
  Design d = placed_design();
  ClockSchedule zero(d.clock_period);
  CtsConfig small_leaves;
  small_leaves.max_leaf_sinks = 2;
  CtsConfig big_leaves;
  big_leaves.max_leaf_sinks = 32;
  ClockTree deep = ClockTree::build(*d.netlist, zero, small_leaves);
  ClockTree shallow = ClockTree::build(*d.netlist, zero, big_leaves);
  EXPECT_GT(deep.report().depth, shallow.report().depth);
  EXPECT_GT(deep.report().num_tree_buffers,
            shallow.report().num_tree_buffers);
}

}  // namespace
}  // namespace rlccd
