#include "gnn/features.h"

#include <gtest/gtest.h>

#include "designgen/generator.h"

namespace rlccd {
namespace {

struct Fixture {
  Design design;
  Sta sta;
  FeatureContext ctx;

  Fixture() : design(make_design()), sta(design.make_sta()) {
    sta.run();
    ctx.netlist = design.netlist.get();
    ctx.sta = &sta;
    ctx.activity = &design.activity;
    ctx.die = design.die;
    ctx.clock_period = design.clock_period;
  }

  static Design make_design() {
    GeneratorConfig cfg;
    cfg.target_cells = 500;
    cfg.seed = 51;
    return generate_design(cfg);
  }
};

TEST(Features, ShapeIsCellsByThirteen) {
  Fixture f;
  Tensor x = build_node_features(f.ctx);
  EXPECT_EQ(x.rows(), f.design.netlist->num_cells());
  EXPECT_EQ(x.cols(), kNumNodeFeatures);
  EXPECT_EQ(kNumNodeFeatures, 13u);  // Table I: 13 dims total
}

TEST(Features, MaskColumnStartsZeroAndUpdates) {
  Fixture f;
  Tensor x = build_node_features(f.ctx);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    EXPECT_FLOAT_EQ(x.at(r, kMaskedFeature), 0.0f);
  }
  std::vector<char> flags(x.rows(), 0);
  flags[3] = 1;
  flags[7] = 1;
  set_masked_column(x, flags);
  EXPECT_FLOAT_EQ(x.at(3, kMaskedFeature), 1.0f);
  EXPECT_FLOAT_EQ(x.at(7, kMaskedFeature), 1.0f);
  EXPECT_FLOAT_EQ(x.at(4, kMaskedFeature), 0.0f);
}

TEST(Features, LocationsNormalizedToDie) {
  Fixture f;
  Tensor x = build_node_features(f.ctx);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    EXPECT_GE(x.at(r, 1), 0.0f);
    EXPECT_LE(x.at(r, 1), 1.0f + 1e-6);
    EXPECT_GE(x.at(r, 2), 0.0f);
    EXPECT_LE(x.at(r, 2), 1.0f + 1e-6);
  }
}

TEST(Features, AllValuesBounded) {
  // Normalization clamps everything to a sane range so the GNN never sees
  // exploding inputs, regardless of design.
  Fixture f;
  Tensor x = build_node_features(f.ctx);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(std::abs(x.data()[i]), 4.0f + 1e-6);
  }
}

TEST(Features, ViolatingCellsShowNegativeSlackFeature) {
  Fixture f;
  Tensor x = build_node_features(f.ctx);
  std::vector<PinId> vio = f.sta.endpoint_violations();
  ASSERT_FALSE(vio.empty());
  for (PinId ep : vio) {
    CellId cell = f.design.netlist->pin(ep).cell;
    EXPECT_LT(x.at(cell.index(), 10), 0.0f)
        << "wst-slack feature of a violating endpoint cell";
  }
}

TEST(Features, ToggleFeatureMatchesActivity) {
  Fixture f;
  Tensor x = build_node_features(f.ctx);
  const Netlist& nl = *f.design.netlist;
  for (const Cell& c : nl.cells()) {
    if (!c.output.valid()) continue;
    NetId net = nl.pin(c.output).net;
    EXPECT_FLOAT_EQ(x.at(c.id.index(), 9),
                    static_cast<float>(f.design.activity.toggle(net)));
  }
}

}  // namespace
}  // namespace rlccd
