// Unix-domain stream sockets for the serve daemon and its clients.
//
// Thin Status-returning wrappers over socket/bind/listen/accept/connect
// plus a deadline-bounded frame receive built on common/ipc's FrameDecoder.
// All fds are created close-on-exec; the listener and accepted connections
// are nonblocking (the daemon multiplexes them through one poll loop),
// client connections stay blocking for writes and use poll() for reads.
#pragma once

#ifndef _WIN32

#include <string>

#include "common/ipc.h"
#include "common/status.h"

namespace rlccd {
namespace serve {

// Binds and listens on `path` (an existing socket file is unlinked first —
// the daemon owns its socket path). The returned fd is nonblocking.
Status unix_listen(const std::string& path, int& fd_out);

// Accepts one pending connection; returns it nonblocking in `fd_out`, or
// -1 with an OK status when the listener has nothing pending (EAGAIN).
Status unix_accept(int listen_fd, int& fd_out);

// Connects to the daemon at `path`, retrying (50 ms apart) until
// `timeout_sec` elapses — covers the daemon still starting up and the
// serve_accept_fail fault point dropping a connection on the floor.
Status unix_connect(const std::string& path, double timeout_sec, int& fd_out);

Status set_nonblocking(int fd);

// Receives the next complete frame, polling `fd` until `timeout_sec`
// elapses (<= 0: wait forever). EOF before a full frame arrives is an
// io_error ("connection closed"), a torn frame a corrupt Status, an expired
// deadline an io_error mentioning "timeout". Bytes beyond the returned
// frame stay buffered in `decoder` for the next call.
Status recv_frame(int fd, FrameDecoder& decoder, Frame& frame,
                  double timeout_sec);

}  // namespace serve
}  // namespace rlccd

#endif  // !_WIN32
