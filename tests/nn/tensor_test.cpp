#include "nn/tensor.h"

#include <gtest/gtest.h>

#include "nn/ops.h"

namespace rlccd {
namespace {

TEST(Tensor, ConstructionAndAccess) {
  Tensor t = Tensor::from_data({1, 2, 3, 4, 5, 6}, 2, 3);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_FLOAT_EQ(t.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t.at(1, 2), 6.0f);
  t.set(1, 2, -1.0f);
  EXPECT_FLOAT_EQ(t.at(1, 2), -1.0f);
}

TEST(Tensor, ZerosAndFull) {
  Tensor z = Tensor::zeros(3, 2);
  for (std::size_t i = 0; i < z.size(); ++i) EXPECT_FLOAT_EQ(z.data()[i], 0.0f);
  Tensor f = Tensor::full(2, 2, 1.5f);
  for (std::size_t i = 0; i < f.size(); ++i) EXPECT_FLOAT_EQ(f.data()[i], 1.5f);
}

TEST(Tensor, ScalarItem) {
  Tensor s = Tensor::scalar(2.5f);
  EXPECT_FLOAT_EQ(s.item(), 2.5f);
}

TEST(Tensor, HandleSemanticsShareStorage) {
  Tensor a = Tensor::zeros(1, 1);
  Tensor b = a;
  b.set(0, 0, 3.0f);
  EXPECT_FLOAT_EQ(a.item(), 3.0f);
}

TEST(Tensor, DetachCopyDropsGraphAndIndependentStorage) {
  Tensor a = Tensor::scalar(1.0f, /*requires_grad=*/true);
  Tensor b = ops::affine(a, 2.0f, 0.0f);
  Tensor d = b.detach_copy();
  EXPECT_FALSE(d.requires_grad());
  d.set(0, 0, 99.0f);
  EXPECT_FLOAT_EQ(b.item(), 2.0f);
}

TEST(Tensor, BackwardAccumulatesThroughSharedSubexpression) {
  // y = x + x => dy/dx = 2.
  Tensor x = Tensor::scalar(3.0f, true);
  Tensor y = ops::add(x, x);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(Tensor, BackwardThroughDiamondGraph) {
  // y = (x*x) + (x*x) reusing the same intermediate: dy/dx = 2*2x = 4x.
  Tensor x = Tensor::scalar(2.0f, true);
  Tensor sq = ops::mul(x, x);
  Tensor y = ops::add(sq, sq);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 8.0f);
}

TEST(Tensor, ZeroGradClearsAccumulation) {
  Tensor x = Tensor::scalar(1.0f, true);
  Tensor y = ops::affine(x, 3.0f, 0.0f);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 3.0f);
  x.zero_grad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(Tensor, SecondBackwardAccumulates) {
  Tensor x = Tensor::scalar(1.0f, true);
  Tensor y1 = ops::affine(x, 2.0f, 0.0f);
  y1.backward();
  Tensor y2 = ops::affine(x, 5.0f, 0.0f);
  y2.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 7.0f);
}

TEST(Tensor, ConstantsGetNoGrad) {
  Tensor c = Tensor::scalar(2.0f, false);
  Tensor x = Tensor::scalar(3.0f, true);
  Tensor y = ops::mul(c, x);
  EXPECT_TRUE(y.requires_grad());
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  EXPECT_FALSE(c.requires_grad());
}

}  // namespace
}  // namespace rlccd
