file(REMOVE_RECURSE
  "CMakeFiles/rlccd_core.dir/rlccd.cpp.o"
  "CMakeFiles/rlccd_core.dir/rlccd.cpp.o.d"
  "CMakeFiles/rlccd_core.dir/selectors.cpp.o"
  "CMakeFiles/rlccd_core.dir/selectors.cpp.o.d"
  "librlccd_core.a"
  "librlccd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlccd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
