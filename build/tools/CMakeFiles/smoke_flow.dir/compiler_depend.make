# Empty compiler generated dependencies file for smoke_flow.
# This may be replaced when dependencies are built.
