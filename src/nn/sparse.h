// Compressed-sparse-row matrix used for graph aggregation (neighborhood
// mean and fan-in-cone sum in EP-GNN). The sparsity pattern is fixed per
// design; only dense operands carry gradients, so spmm() needs the transpose
// for the backward pass — built once here.
#pragma once

#include <cstdint>
#include <vector>

#include "common/contracts.h"

namespace rlccd {

struct SparseMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint32_t> row_ptr;  // size rows+1
  std::vector<std::uint32_t> col_idx;  // size nnz
  std::vector<float> values;           // size nnz

  struct Triplet {
    std::uint32_t row;
    std::uint32_t col;
    float value;
  };

  static SparseMatrix from_triplets(std::size_t rows, std::size_t cols,
                                    std::vector<Triplet> triplets);

  [[nodiscard]] SparseMatrix transposed() const;
  [[nodiscard]] std::size_t nnz() const { return col_idx.size(); }
};

// A sparse operand bundled with its transpose for autograd.
struct SparseOperand {
  SparseMatrix matrix;
  SparseMatrix matrix_t;

  explicit SparseOperand(SparseMatrix m)
      : matrix(std::move(m)), matrix_t(matrix.transposed()) {}
};

}  // namespace rlccd
