file(REMOVE_RECURSE
  "CMakeFiles/train_rlccd.dir/train_rlccd.cpp.o"
  "CMakeFiles/train_rlccd.dir/train_rlccd.cpp.o.d"
  "train_rlccd"
  "train_rlccd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_rlccd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
